#include "base/common.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "base/rng.h"
#include "base/sha256.h"

namespace desyn {
namespace {

TEST(Cat, ConcatenatesValues) {
  EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(cat(), "");
}

TEST(Ids, DefaultInvalid) {
  struct Tag {};
  Id<Tag> id;
  EXPECT_FALSE(id.valid());
  Id<Tag> a(3), b(3), c(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_TRUE(a.valid());
}

TEST(Fail, ThrowsError) {
  EXPECT_THROW(fail("boom ", 42), Error);
  try {
    fail("boom ", 42);
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom 42");
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, FlipProbabilityRoughlyRespected) {
  Rng r(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.flip(0.25);
  EXPECT_GT(heads, 2000);
  EXPECT_LT(heads, 3000);
}

TEST(CounterRng, DrawsArePureFunctionsOfTheirCoordinates) {
  // Any evaluation order — forward, backward, interleaved across streams —
  // yields the same draw for the same (seed, stream, counter) triple.
  for (uint64_t c = 0; c < 50; ++c) {
    EXPECT_EQ(rng_draw(1, 2, c), rng_draw(1, 2, c));
  }
  std::vector<uint64_t> forward, backward;
  for (uint64_t c = 0; c < 50; ++c) forward.push_back(rng_draw(9, 4, c));
  for (uint64_t c = 50; c-- > 0;) backward.push_back(rng_draw(9, 4, c));
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(CounterRng, FacadeMatchesRawDraws) {
  CounterRng r(77, 5);
  for (uint64_t c = 0; c < 100; ++c) {
    EXPECT_EQ(r.next(), rng_draw(77, 5, c));
  }
}

TEST(CounterRng, StreamsAndSeedsDecorrelate) {
  // Distinct (seed, stream, counter) coordinates should essentially never
  // collide in 64 bits across a few thousand draws.
  std::set<uint64_t> seen;
  size_t n = 0;
  for (uint64_t seed : {1ull, 2ull, 0xdeadbeefull}) {
    for (uint64_t stream = 0; stream < 8; ++stream) {
      for (uint64_t c = 0; c < 64; ++c) {
        seen.insert(rng_draw(seed, stream, c));
        ++n;
      }
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(CounterRng, UnitIsInHalfOpenIntervalAndUniformish) {
  double sum = 0;
  for (uint64_t c = 0; c < 10000; ++c) {
    double u = rng_unit(3, 1, c);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SplitWs, SplitsAndSkipsRuns) {
  auto t = split_ws("  a bb\t c\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
}

// ---------------------------------------------------------------------------
// SHA-256 — pinned against the FIPS 180-4 test vectors. The implementation
// dispatches to a hardware (SHA-NI) compressor when the CPU has one, so
// these vectors guard both code paths on whatever machine runs them.
// ---------------------------------------------------------------------------

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(
      sha256("").hex(),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256("abc").hex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Two-block message (56 bytes: the padding spills into a second block).
  EXPECT_EQ(
      sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  // The classic long-message vector; exercises the multi-block bulk path
  // (and the hardware compressor's block loop when present).
  Sha256 h;
  std::string a(1000000, 'a');
  h.update(a);
  EXPECT_EQ(
      h.digest().hex(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ChunkedFeedingMatchesOneShot) {
  // Any split of the input across update() calls produces the same digest:
  // buffered partial blocks and the bulk fast path must agree.
  std::string data(10000, '\0');
  Rng rng(99);
  for (char& c : data) c = static_cast<char>(rng.below(256));
  const Hash256 want = sha256(data);
  for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 192u, 4096u}) {
    Sha256 h;
    for (size_t off = 0; off < data.size(); off += chunk) {
      h.update(data.data() + off, std::min(chunk, data.size() - off));
    }
    EXPECT_EQ(h.digest(), want) << "chunk " << chunk;
  }
}

TEST(Sha256, FieldMixersDoNotAlias) {
  // Length-prefixed fields: ("ab","c") and ("a","bc") must differ, as must
  // a field boundary vs. raw concatenation.
  Sha256 a, b, c;
  a.field("ab").field("c");
  b.field("a").field("bc");
  c.field("abc");
  Hash256 ha = a.digest(), hb = b.digest(), hc = c.digest();
  EXPECT_NE(ha, hb);
  EXPECT_NE(ha, hc);
  EXPECT_NE(hb, hc);

  Sha256 u, v;
  u.field_u64(1).field_u64(2);
  v.field_u64(2).field_u64(1);
  EXPECT_NE(u.digest(), v.digest());
}

TEST(Sha256, HexIsLowercase64Chars) {
  std::string hex = sha256("x").hex();
  EXPECT_EQ(hex.size(), 64u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

}  // namespace
}  // namespace desyn
