#include "base/common.h"

#include <gtest/gtest.h>

#include <set>

namespace desyn {
namespace {

TEST(Cat, ConcatenatesValues) {
  EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(cat(), "");
}

TEST(Ids, DefaultInvalid) {
  struct Tag {};
  Id<Tag> id;
  EXPECT_FALSE(id.valid());
  Id<Tag> a(3), b(3), c(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_TRUE(a.valid());
}

TEST(Fail, ThrowsError) {
  EXPECT_THROW(fail("boom ", 42), Error);
  try {
    fail("boom ", 42);
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom 42");
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, FlipProbabilityRoughlyRespected) {
  Rng r(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.flip(0.25);
  EXPECT_GT(heads, 2000);
  EXPECT_LT(heads, 3000);
}

TEST(SplitWs, SplitsAndSkipsRuns) {
  auto t = split_ws("  a bb\t c\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
}

}  // namespace
}  // namespace desyn
