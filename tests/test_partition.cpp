#include "core/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "dlx/cpu_builder.h"
#include "dlx/programs.h"
#include "netlist/builder.h"
#include "pn/mcr.h"
#include "verif/flow_equivalence.h"

namespace desyn::flow {
namespace {

using cell::Kind;
using cell::Tech;
using cell::V;
using nl::Builder;
using nl::Netlist;
using nl::NetId;

/// 3-stage pipeline with hierarchical names (same shape as test_flow's).
Netlist pipeline3(NetId* clock_out) {
  Netlist nl("pipe3");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d0 = b.input("din0");
  NetId d1 = b.input("din1");
  NetId q0a = b.dff(d0, clk, V::V0, "s0.a");
  NetId q0b = b.dff(d1, clk, V::V0, "s0.b");
  NetId x1 = b.xor_(q0a, q0b);
  NetId q1 = b.dff(x1, clk, V::V0, "s1.a");
  NetId q1b = b.dff(q0b, clk, V::V1, "s1.b");
  NetId x2 = b.and_({b.inv(q1), q1b});
  NetId q2 = b.dff(x2, clk, V::V0, "s2.a");
  b.output(q2);
  *clock_out = clk;
  return nl;
}

/// A small design with one RAM macro (for the RAM-integrity tests).
Netlist ram_design(NetId* clock_out) {
  Netlist nl("ramd");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId din = b.input("din");
  std::vector<NetId> wa(2);
  for (int i = 0; i < 2; ++i) wa[i] = nl.add_net(cat("adr.q", i));
  NetId carry = b.hi();
  for (int i = 0; i < 2; ++i) {
    NetId sum = b.xor_(wa[i], carry);
    carry = b.and_({wa[i], carry});
    nl.add_cell(Kind::Dff, cat("adr.r", i), {sum, clk}, {wa[i]}, V::V0);
  }
  std::vector<NetId> wd = {din, b.inv(din)};
  std::vector<NetId> ra = {b.inv(wa[0]), wa[1]};
  auto rd = b.ram(clk, b.hi(), wa, wd, ra, 2, "mem");
  NetId q = b.dff(b.xor_(rd[0], rd[1]), clk, V::V0, "out.r");
  b.output(q);
  *clock_out = clk;
  return nl;
}

std::vector<nl::CellId> dffs_of(const Netlist& nl) {
  std::vector<nl::CellId> out;
  for (nl::CellId c : nl.cells()) {
    if (nl.cell(c).kind == Kind::Dff) out.push_back(c);
  }
  return out;
}

TEST(BankPrefix, DepthAndFallbacks) {
  EXPECT_EQ(bank_prefix("ifid.pc_q3"), "ifid");
  EXPECT_EQ(bank_prefix("st3.d.r0"), "st3.d");
  EXPECT_EQ(bank_prefix("st3.d.r0", 2), "st3");
  EXPECT_EQ(bank_prefix("a.b.c.d", 2), "a.b");
  // Depth beyond the hierarchy keeps at least the first segment.
  EXPECT_EQ(bank_prefix("a.b", 5), "a");
  EXPECT_EQ(bank_prefix("flat"), "core");
  EXPECT_EQ(bank_prefix("flat", 3), "core");
  EXPECT_EQ(bank_prefix(".odd"), "core");
  // Verilog escaped identifiers are atomic: dots are not hierarchy.
  EXPECT_EQ(bank_prefix("\\weird.name"), "core");
  EXPECT_EQ(bank_prefix("\\weird.name", 2), "core");
}

TEST(Partition, ConstructorsMatchLegacyStrategies) {
  NetId clk;
  Netlist nl = pipeline3(&clk);
  Partition pfx = Partition::prefix(nl);
  EXPECT_EQ(pfx.num_groups(), 3u);  // s0, s1, s2
  EXPECT_EQ(pfx.groups()[0].name, "s0");
  EXPECT_EQ(pfx.groups()[0].cells.size(), 2u);
  Partition perff = Partition::per_flip_flop(nl);
  EXPECT_EQ(perff.num_groups(), 5u);
  Partition single = Partition::single(nl);
  ASSERT_EQ(single.num_groups(), 1u);
  EXPECT_EQ(single.groups()[0].name, "all");
  EXPECT_EQ(single.groups()[0].cells.size(), 5u);

  // The prefix constructor builds the same banks as an explicit partition
  // listing the same groups.
  Netlist via_ctor = nl, via_part = nl;
  LatchifyResult a = latchify(via_ctor, clk, Partition::prefix(via_ctor));
  LatchifyResult b = latchify(via_part, clk, pfx);
  ASSERT_EQ(a.banks.size(), b.banks.size());
  for (size_t i = 0; i < a.banks.size(); ++i) {
    EXPECT_EQ(a.banks[i].name, b.banks[i].name);
    EXPECT_EQ(a.banks[i].even, b.banks[i].even);
    EXPECT_EQ(a.banks[i].latches.size(), b.banks[i].latches.size());
  }
}

TEST(Partition, PrefixDepthCoarsens) {
  Netlist nl("deep");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d = b.input("d");
  NetId q1 = b.dff(d, clk, V::V0, "u0.a.r0");
  NetId q2 = b.dff(q1, clk, V::V0, "u0.a.r1");
  NetId q3 = b.dff(q2, clk, V::V0, "u0.b.r0");
  NetId q4 = b.dff(q3, clk, V::V0, "u1.a.r0");
  b.output(q4);
  EXPECT_EQ(Partition::prefix(nl, 1).num_groups(), 3u);  // u0.a u0.b u1.a
  Partition d2 = Partition::prefix(nl, 2);
  EXPECT_EQ(d2.num_groups(), 2u);  // u0, u1
  EXPECT_EQ(d2.groups()[0].name, "u0");
  EXPECT_EQ(d2.groups()[0].cells.size(), 3u);
}

TEST(Partition, RejectsEmptyGroup) {
  NetId clk;
  Netlist nl = pipeline3(&clk);
  auto ffs = dffs_of(nl);
  try {
    Partition::from_groups(nl, {{ffs[0], ffs[1], ffs[2], ffs[3], ffs[4]}, {}});
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.kind(), PartitionError::Kind::EmptyGroup);
  }
}

TEST(Partition, RejectsForeignCell) {
  NetId clk;
  Netlist nl = pipeline3(&clk);
  auto ffs = dffs_of(nl);
  // A combinational cell id is not a storage cell.
  nl::CellId foreign;
  for (nl::CellId c : nl.cells()) {
    if (nl.cell(c).kind == Kind::Xor) foreign = c;
  }
  ASSERT_TRUE(foreign.valid());
  std::vector<std::vector<nl::CellId>> groups = {
      {ffs[0], ffs[1], ffs[2], ffs[3], ffs[4], foreign}};
  try {
    Partition::from_groups(nl, groups);
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.kind(), PartitionError::Kind::ForeignCell);
  }
  // So is an id from another netlist entirely (out of range).
  groups = {{ffs[0], ffs[1], ffs[2], ffs[3], ffs[4],
             nl::CellId(static_cast<uint32_t>(nl.num_cells()) + 7)}};
  try {
    Partition::from_groups(nl, groups);
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.kind(), PartitionError::Kind::ForeignCell);
  }
}

TEST(Partition, RejectsDuplicateAndUncovered) {
  NetId clk;
  Netlist nl = pipeline3(&clk);
  auto ffs = dffs_of(nl);
  try {
    Partition::from_groups(nl, {{ffs[0], ffs[1]}, {ffs[1], ffs[2], ffs[3], ffs[4]}});
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.kind(), PartitionError::Kind::DuplicateCell);
  }
  try {
    Partition::from_groups(nl, {{ffs[0], ffs[1], ffs[2], ffs[3]}});  // ffs[4] missing
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.kind(), PartitionError::Kind::UncoveredCell);
  }
}

TEST(Partition, RejectsSplitRamPair) {
  NetId clk;
  Netlist nl = ram_design(&clk);
  auto ffs = dffs_of(nl);
  nl::CellId ram;
  for (nl::CellId c : nl.cells()) {
    if (nl.cell(c).kind == Kind::Ram) ram = c;
  }
  ASSERT_TRUE(ram.valid());
  // Grouping the RAM with flip-flops would split its bank pair's
  // write-port/read-data ownership across unrelated storage.
  std::vector<std::vector<nl::CellId>> groups = {{ffs.begin(), ffs.end()}};
  groups[0].push_back(ram);
  try {
    Partition::from_groups(nl, groups);
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.kind(), PartitionError::Kind::MixedRamGroup);
  }
  // Listed alone it is fine, and equals the auto-appended form.
  Partition listed = Partition::from_groups(
      nl, {{ffs.begin(), ffs.end()}, {ram}});
  Partition implied = Partition::from_groups(nl, {{ffs.begin(), ffs.end()}});
  EXPECT_EQ(listed, implied);
  EXPECT_TRUE(listed.groups().back().ram);
}

TEST(Partition, ExplicitPartitionDrivesTheWholeFlow) {
  NetId clk;
  Netlist nl = pipeline3(&clk);
  auto ffs = dffs_of(nl);
  // A deliberately odd clustering: {s0.a, s1.b, s2.a} + {s0.b, s1.a}.
  Partition p = Partition::from_groups(
      nl, {{ffs[0], ffs[3], ffs[4]}, {ffs[1], ffs[2]}});
  verif::FlowEqOptions opt;
  opt.rounds = 25;
  opt.desync.strategy = PartitionSpec::explicit_(p);
  auto res = verif::check_flow_equivalence(nl, clk, verif::random_stimulus(11),
                                           Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
  EXPECT_EQ(res.banks, 6u);  // 2 groups + env pair
}

TEST(Partition, CoarsePartitionWithRamStaysEquivalentEveryProtocol) {
  // Merging every FF into one bank around a RAM exercises the RAM
  // read-before-write and command-stability ordering edges over merged
  // banks — the riskiest quotient case.
  NetId clk;
  Netlist nl = ram_design(&clk);
  Partition p = Partition::from_groups(nl, {dffs_of(nl)});
  for (ctl::Protocol proto : ctl::kAllProtocols) {
    verif::FlowEqOptions opt;
    opt.rounds = 20;
    opt.desync.protocol = proto;
    opt.desync.strategy = PartitionSpec::explicit_(p);
    auto res = verif::check_flow_equivalence(
        nl, clk, verif::random_stimulus(23), Tech::generic90(), opt);
    EXPECT_TRUE(res.equivalent)
        << ctl::protocol_name(proto) << ": " << res.mismatch;
    EXPECT_EQ(res.desync_setup_violations, 0u) << ctl::protocol_name(proto);
  }
}

TEST(PartitionSpec, ParseAndLabelRoundTrip) {
  EXPECT_EQ(PartitionSpec::parse("prefix").label(), "prefix");
  EXPECT_EQ(PartitionSpec::parse("prefix:3").label(), "prefix:3");
  EXPECT_EQ(PartitionSpec::parse("perff").label(), "perff");
  EXPECT_EQ(PartitionSpec::parse("single").label(), "single");
  EXPECT_EQ(PartitionSpec::parse("auto").label(), "auto:1.05");
  EXPECT_EQ(PartitionSpec::parse("auto:1.2").label(), "auto:1.2");
  EXPECT_EQ(PartitionSpec::parse("auto:1.2").mode, PartitionSpec::Mode::Auto);
  EXPECT_DOUBLE_EQ(PartitionSpec::parse("auto:1.2").auto_budget, 1.2);
  EXPECT_EQ(PartitionSpec::parse("prefix:2").prefix_depth, 2);
  EXPECT_THROW(PartitionSpec::parse("bogus"), Error);
  EXPECT_THROW(PartitionSpec::parse("prefix:0"), Error);
  EXPECT_THROW(PartitionSpec::parse("prefix:x"), Error);
  EXPECT_THROW(PartitionSpec::parse("auto:0.5"), Error);
  EXPECT_THROW(PartitionSpec::parse("auto:"), Error);
}

// ---------------------------------------------------------------------------
// Property: seeded random valid partitions stay flow-equivalent with zero
// setup violations, across all four protocols, on suite circuits.
// ---------------------------------------------------------------------------

/// Deterministic random grouping of the DFFs of `nl` into ~`target` groups.
Partition random_partition(const Netlist& nl, uint64_t seed, size_t target) {
  auto ffs = dffs_of(nl);
  Rng rng(seed);
  // Deterministic shuffle (Fisher-Yates with the project Rng).
  for (size_t i = ffs.size(); i > 1; --i) {
    std::swap(ffs[i - 1], ffs[static_cast<size_t>(rng.below(i))]);
  }
  target = std::max<size_t>(1, std::min(target, ffs.size()));
  std::vector<std::vector<nl::CellId>> groups(target);
  for (size_t i = 0; i < ffs.size(); ++i) {
    groups[rng.below(target)].push_back(ffs[i]);
  }
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());
  return Partition::from_groups(nl, groups);
}

class RandomPartitionFlowEq
    : public ::testing::TestWithParam<std::tuple<ctl::Protocol, const char*>> {
};

TEST_P(RandomPartitionFlowEq, SeededRandomPartitionsStayEquivalent) {
  auto [proto, name] = GetParam();
  circuits::Circuit circ{Netlist("none"), NetId()};
  for (circuits::Suite& s : circuits::scaling_suite()) {
    if (s.name == name) circ = std::move(s.circuit);
  }
  ASSERT_TRUE(circ.clock.valid()) << name;
  for (uint64_t seed : {3u, 17u}) {
    Partition p = random_partition(circ.netlist, seed, 5);
    verif::FlowEqOptions opt;
    opt.rounds = 12;
    opt.desync.protocol = proto;
    opt.desync.strategy = PartitionSpec::explicit_(p);
    auto res = verif::check_flow_equivalence(circ.netlist, circ.clock,
                                             verif::random_stimulus(seed + 1),
                                             Tech::generic90(), opt);
    EXPECT_TRUE(res.equivalent)
        << name << " seed " << seed << ": " << res.mismatch;
    EXPECT_EQ(res.desync_setup_violations, 0u) << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsByCircuits, RandomPartitionFlowEq,
    ::testing::Combine(::testing::ValuesIn(ctl::kAllProtocols),
                       ::testing::Values("pipe4x8", "lfsr16", "counters4x8")),
    [](const ::testing::TestParamInfo<std::tuple<ctl::Protocol, const char*>>&
           info) {
      std::string n = ctl::protocol_name(std::get<0>(info.param));
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n + "_" + std::get<1>(info.param);
    });

// ---------------------------------------------------------------------------
// The MCR-guided optimizer: acceptance on the large designs.
// ---------------------------------------------------------------------------

void expect_optimized(const Netlist& nl, NetId clk, const char* what) {
  const Tech& tech = Tech::generic90();
  PartitionOptOptions opt;
  opt.period_budget = 1.05;
  opt.protocol = ctl::Protocol::SemiDecoupled;
  PartitionOptResult r = optimize_partition(nl, clk, tech, opt);
  // Measurably cheaper than per-flip-flop...
  EXPECT_LT(r.cost, r.perff_cost / 2) << what;
  EXPECT_GT(r.merges, 0) << what;
  // ...within the stated budget of the Prefix baseline.
  EXPECT_LE(r.period,
            1.05 * std::max(r.baseline_period, r.perff_period) + 1e-6)
      << what;
  // Deterministic: a second run yields the identical partition.
  PartitionOptResult r2 = optimize_partition(nl, clk, tech, opt);
  EXPECT_TRUE(r.partition == r2.partition) << what;
  EXPECT_EQ(r.evaluations, r2.evaluations) << what;

  // The optimized partition drives the real flow and stays flow-equivalent
  // under every protocol, with zero setup violations.
  for (ctl::Protocol proto : ctl::kAllProtocols) {
    verif::FlowEqOptions feq;
    feq.rounds = 10;
    feq.desync.protocol = proto;
    feq.desync.strategy = PartitionSpec::explicit_(r.partition);
    auto res = verif::check_flow_equivalence(
        nl, clk, verif::random_stimulus(5), tech, feq);
    EXPECT_TRUE(res.equivalent)
        << what << " under " << ctl::protocol_name(proto) << ": "
        << res.mismatch;
    EXPECT_EQ(res.desync_setup_violations, 0u)
        << what << " under " << ctl::protocol_name(proto);
  }
}

TEST(Optimizer, BeatsPerFlipFlopWithinBudgetOnRpipe32x8) {
  circuits::Circuit c = circuits::random_pipeline(7, 32, 8);
  expect_optimized(c.netlist, c.clock, "rpipe32x8");
}

TEST(Optimizer, BeatsPerFlipFlopWithinBudgetOnMesh6x6x2) {
  circuits::Circuit c = circuits::register_mesh(6, 6, 2);
  expect_optimized(c.netlist, c.clock, "mesh6x6x2");
}

TEST(Optimizer, BeatsPerFlipFlopWithinBudgetOnDlx) {
  dlx::DlxConfig cfg;
  cfg.regs = 8;  // compact config keeps the double simulations quick
  cfg.imem_bits = 7;
  cfg.dmem_bits = 5;
  Netlist nl("dlx");
  dlx::build_dlx(nl, cfg, dlx::fibonacci_program(6));
  expect_optimized(nl, nl.find_net("clk"), "dlx");
}

// ---------------------------------------------------------------------------
// The incremental search vs the cold oracle: identical results.
// ---------------------------------------------------------------------------

/// The incremental optimizer (delta quotients + warm-started Howard +
/// bound pruning + parallel waves) must return exactly the partition the
/// cold reference search does — same merges, same refinement moves, same
/// final period and synthesized cost. The oracle deliberately skips bound
/// pruning and re-solves every candidate from scratch, so an invalid
/// monotone bound or a warm/cold solver divergence shows up here as a
/// different committed merge.
void expect_matches_reference(const Netlist& nl, NetId clk, double budget,
                              const char* what) {
  const Tech& tech = Tech::generic90();
  PartitionOptOptions opt;
  opt.period_budget = budget;
  opt.protocol = ctl::Protocol::SemiDecoupled;
  opt.jobs = 3;  // also exercises the parallel-wave path
  PartitionOptResult inc = optimize_partition(nl, clk, tech, opt);
  PartitionOptResult ref = optimize_partition_reference(nl, clk, tech, opt);
  EXPECT_TRUE(inc.partition == ref.partition)
      << what << " budget " << budget << ":\n  incremental: "
      << inc.partition.describe(nl) << "\n  reference:   "
      << ref.partition.describe(nl);
  EXPECT_EQ(inc.merges, ref.merges) << what;
  EXPECT_EQ(inc.moves, ref.moves) << what;
  EXPECT_EQ(inc.period, ref.period) << what;
  EXPECT_EQ(inc.cost, ref.cost) << what;
  EXPECT_EQ(inc.perff_period, ref.perff_period) << what;
  // The whole point: the incremental search spends a handful of cold
  // solves where the oracle spends one per candidate.
  EXPECT_LE(inc.stats.cold_solves * 20, ref.stats.cold_solves) << what;
}

TEST(OptimizerEquivalence, Rpipe32x8MatchesReference) {
  circuits::Circuit c = circuits::random_pipeline(7, 32, 8);
  expect_matches_reference(c.netlist, c.clock, 1.05, "rpipe32x8");
  expect_matches_reference(c.netlist, c.clock, 1.0, "rpipe32x8");
}

TEST(OptimizerEquivalence, Mesh6x6x2MatchesReference) {
  circuits::Circuit c = circuits::register_mesh(6, 6, 2);
  expect_matches_reference(c.netlist, c.clock, 1.05, "mesh6x6x2");
  expect_matches_reference(c.netlist, c.clock, 1.0, "mesh6x6x2");
}

TEST(OptimizerEquivalence, SuiteCircuitsMatchReference) {
  for (circuits::Suite& s : circuits::scaling_suite()) {
    if (s.name != "pipe4x8" && s.name != "counters4x8" && s.name != "crc32") {
      continue;
    }
    expect_matches_reference(s.circuit.netlist, s.circuit.clock, 1.02,
                             s.name.c_str());
  }
}

TEST(OptimizerEquivalence, DlxMatchesReferenceUnderTightBudget) {
  dlx::DlxConfig cfg;
  cfg.regs = 8;
  cfg.imem_bits = 7;
  cfg.dmem_bits = 5;
  Netlist nl("dlx");
  dlx::build_dlx(nl, cfg, dlx::fibonacci_program(6));
  // budget 1.0 is the fail-heavy regime: candidates bust the budget, the
  // bound cache prunes, and waves escalate — the riskiest path to pin.
  expect_matches_reference(nl, nl.find_net("clk"), 1.0, "dlx");
}

TEST(Optimizer, ByteIdenticalForAnyJobCount) {
  circuits::Circuit c = circuits::random_pipeline(7, 32, 8);
  const Tech& tech = Tech::generic90();
  PartitionOptOptions opt;
  opt.period_budget = 1.0;
  opt.protocol = ctl::Protocol::SemiDecoupled;
  opt.jobs = 1;
  PartitionOptResult serial = optimize_partition(c.netlist, c.clock, tech, opt);
  opt.jobs = 8;
  PartitionOptResult par = optimize_partition(c.netlist, c.clock, tech, opt);
  EXPECT_TRUE(serial.partition == par.partition);
  EXPECT_EQ(serial.period, par.period);
  EXPECT_EQ(serial.cost, par.cost);
  // Wave composition is jobs-independent, so even the counters agree.
  EXPECT_EQ(serial.stats.candidates, par.stats.candidates);
  EXPECT_EQ(serial.stats.pruned, par.stats.pruned);
  EXPECT_EQ(serial.stats.warm_solves, par.stats.warm_solves);
  EXPECT_EQ(serial.stats.cold_solves, par.stats.cold_solves);
  EXPECT_EQ(serial.evaluations, par.evaluations);
}

// ---------------------------------------------------------------------------
// IncrementalQuotient: deltas and undo against from-scratch quotients.
// ---------------------------------------------------------------------------

std::vector<std::tuple<int, int, Ps>> edge_list(const ctl::ControlGraph& cg) {
  std::vector<std::tuple<int, int, Ps>> out;
  for (const auto& e : cg.edges()) out.push_back({e.from, e.to, e.matched_delay});
  return out;
}

TEST(IncrementalQuotient, MergeMoveUndoRoundTrip) {
  NetId clk;
  Netlist nl = pipeline3(&clk);
  Netlist latched = nl;
  Partition perff = Partition::per_flip_flop(nl);
  LatchifyResult lr = latchify(latched, clk, perff);
  AdjacencyResult fine = extract_control_graph(latched, lr, clk,
                                               Tech::generic90(), 1.1);
  std::vector<char> ok(perff.num_groups(), 1);
  IncrementalQuotient q(fine.cg, ok);
  auto before = edge_list(q.materialize());
  ASSERT_EQ(q.num_live(), perff.num_groups());

  q.merge(0, 2);
  EXPECT_EQ(q.num_live(), perff.num_groups() - 1);
  EXPECT_EQ(q.cluster_of(2), 0);
  auto merged_once = edge_list(q.materialize());
  q.merge(1, 3);
  q.undo();
  EXPECT_EQ(edge_list(q.materialize()), merged_once);
  q.move(2, 1);
  EXPECT_EQ(q.cluster_of(2), 1);
  q.undo();
  EXPECT_EQ(q.cluster_of(2), 0);
  EXPECT_EQ(edge_list(q.materialize()), merged_once);
  q.undo();
  EXPECT_EQ(edge_list(q.materialize()), before);
  EXPECT_EQ(q.num_live(), perff.num_groups());
}

TEST(Optimizer, AutoSpecResolvesInsideDesynchronize) {
  circuits::Circuit c = circuits::register_mesh(6, 6, 2);
  DesyncOptions opt;
  opt.strategy = PartitionSpec::parse("auto:1.05");
  opt.protocol = ctl::Protocol::SemiDecoupled;
  DesyncResult dr =
      desynchronize(c.netlist, c.clock, Tech::generic90(), opt);
  // The optimizer collapses the 72 per-cell banks to a handful.
  EXPECT_LT(dr.partition.num_groups(), 36u);
  EXPECT_EQ(dr.cg.num_banks(), 2 * dr.partition.num_groups() + 2);
  dr.netlist.check();
}

}  // namespace
}  // namespace desyn::flow
