#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "netlist/builder.h"
#include "netlist/hash.h"
#include "netlist/query.h"
#include "netlist/reader.h"
#include "netlist/writer.h"

namespace desyn::nl {
namespace {

using cell::Kind;
using cell::V;

TEST(Netlist, AddAndConnect) {
  Netlist nl("t");
  NetId a = nl.add_input("a");
  NetId b = nl.add_input("b");
  NetId y = nl.add_net("y");
  CellId g = nl.add_cell(Kind::And, "g", {a, b}, {y});
  nl.mark_output(y);

  EXPECT_EQ(nl.net(y).driver, g);
  ASSERT_EQ(nl.net(a).fanout.size(), 1u);
  EXPECT_EQ(nl.net(a).fanout[0].cell, g);
  EXPECT_TRUE(nl.is_primary_input(a));
  EXPECT_FALSE(nl.is_primary_input(y));
  nl.check();
}

TEST(Netlist, NameLookupAndUniquification) {
  Netlist nl("t");
  NetId a = nl.add_net("x");
  NetId b = nl.add_net("x");  // duplicate name gets uniquified
  EXPECT_NE(nl.net(a).name, nl.net(b).name);
  EXPECT_EQ(nl.find_net("x"), a);
  EXPECT_FALSE(nl.find_net("nope").valid());
}

TEST(Netlist, RewireInput) {
  Netlist nl("t");
  NetId a = nl.add_input("a");
  NetId b = nl.add_input("b");
  NetId y = nl.add_net("y");
  CellId g = nl.add_cell(Kind::Buf, "g", {a}, {y});
  nl.rewire_input(g, 0, b);
  EXPECT_TRUE(nl.net(a).fanout.empty());
  ASSERT_EQ(nl.net(b).fanout.size(), 1u);
  EXPECT_EQ(nl.cell(g).ins[0], b);
  nl.check();
}

TEST(Netlist, RemoveCellTombstones) {
  Netlist nl("t");
  NetId a = nl.add_input("a");
  NetId y = nl.add_net("y");
  CellId g = nl.add_cell(Kind::Buf, "g", {a}, {y});
  EXPECT_EQ(nl.num_live_cells(), 1u);
  nl.remove_cell(g);
  EXPECT_EQ(nl.num_live_cells(), 0u);
  EXPECT_FALSE(nl.is_live(g));
  EXPECT_FALSE(nl.net(y).driver.valid());
  EXPECT_TRUE(nl.net(a).fanout.empty());
  int count = 0;
  for (CellId c : nl.cells()) {
    (void)c;
    ++count;
  }
  EXPECT_EQ(count, 0);
  nl.check();
}

TEST(Builder, TreeDecompositionForWideGates) {
  Netlist nl("t");
  Builder b(nl);
  std::vector<NetId> ins;
  for (int i = 0; i < 20; ++i) ins.push_back(b.input(cat("i", i)));
  NetId y = b.and_(ins, "y");
  b.output(y);
  nl.check();
  // Every AND cell must be within arity bounds.
  for (CellId c : nl.cells()) {
    EXPECT_LE(nl.cell(c).ins.size(), static_cast<size_t>(cell::kMaxArity));
  }
  // 20 inputs cannot fit one level: expect at least 3 cells.
  EXPECT_GE(nl.num_live_cells(), 3u);
}

TEST(Builder, SingleInputReduction) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId y1 = b.and_(std::vector<NetId>{a});
  NetId y2 = b.nand_(std::vector<NetId>{a});
  EXPECT_EQ(nl.cell(nl.net(y1).driver).kind, Kind::Buf);
  EXPECT_EQ(nl.cell(nl.net(y2).driver).kind, Kind::Inv);
}

TEST(Builder, ScopesNestNames) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  {
    Builder::Scoped s1(b, "u1");
    {
      Builder::Scoped s2(b, "alu");
      NetId n = b.buf(a, "x");
      EXPECT_EQ(nl.net(n).name, "u1.alu.x");
    }
    NetId m = b.buf(a, "y");
    EXPECT_EQ(nl.net(m).name, "u1.y");
  }
  NetId k = b.buf(a, "z");
  EXPECT_EQ(nl.net(k).name, "z");
}

TEST(Builder, TieCellsShared) {
  Netlist nl("t");
  Builder b(nl);
  EXPECT_EQ(b.lo(), b.lo());
  EXPECT_EQ(b.hi(), b.hi());
  EXPECT_NE(b.lo(), b.hi());
}

TEST(Query, TopoOrderRespectsDependencies) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId c = b.input("clk");
  NetId x = b.inv(a);
  NetId q = b.dff(x, c, V::V0);
  NetId y = b.buf(q);
  b.output(y);

  auto order = topo_order(nl);
  EXPECT_EQ(order.size(), nl.num_live_cells());
  std::vector<int> pos(nl.num_cells(), -1);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i].value()] = static_cast<int>(i);
  CellId invc = nl.net(x).driver;
  CellId bufc = nl.net(y).driver;
  CellId dffc = nl.net(q).driver;
  // inv before nothing special; buf must come after DFF is irrelevant (DFF is
  // a cut), but buf reads q so it only needs q's driver to be a cut: check
  // the comb cells are ordered before the storage tail.
  EXPECT_LT(pos[invc.value()], pos[dffc.value()]);
  EXPECT_LT(pos[bufc.value()], pos[dffc.value()]);
}

TEST(Query, CombinationalCycleDetected) {
  Netlist nl("t");
  NetId a = nl.add_input("a");
  NetId n1 = nl.add_net("n1");
  NetId n2 = nl.add_net("n2");
  nl.add_cell(Kind::And, "g1", {a, n2}, {n1});
  nl.add_cell(Kind::Buf, "g2", {n1}, {n2});
  EXPECT_THROW(topo_order(nl), Error);
}

TEST(Query, CycleThroughCElemAllowed) {
  Netlist nl("t");
  NetId a = nl.add_input("a");
  NetId n1 = nl.add_net("n1");
  NetId n2 = nl.add_net("n2");
  nl.add_cell(Kind::CElem, "c1", {a, n2}, {n1});
  nl.add_cell(Kind::Inv, "g2", {n1}, {n2});
  EXPECT_NO_THROW(topo_order(nl));
}

TEST(Query, StatsInventory) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId ck = b.input("ck");
  NetId x = b.inv(a);
  NetId q = b.dff(x, ck, V::V1);
  NetId l = b.latch(q, ck, V::V0);
  b.output(l);
  Stats s = stats(nl, cell::Tech::generic90());
  EXPECT_EQ(s.cells, 3u);
  EXPECT_EQ(s.flipflops, 1u);
  EXPECT_EQ(s.latches, 1u);
  EXPECT_EQ(s.count(Kind::Inv), 1u);
  EXPECT_GT(s.area, 0.0);
  EXPECT_NE(s.to_string().find("DFF:1"), std::string::npos);
}

TEST(Query, FaninConeStopsAtStorage) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId ck = b.input("ck");
  NetId q = b.dff(a, ck, V::V0);
  NetId x = b.inv(q);
  NetId y = b.buf(x);
  auto cone = combinational_fanin(nl, y);
  // inv and buf, not the DFF.
  EXPECT_EQ(cone.size(), 2u);
}

TEST(Writer, RoundTripSmall) {
  Netlist nl("top");
  Builder b(nl);
  NetId a = b.input("a");
  NetId c = b.input("ck");
  NetId x = b.xor_(a, a, "x");
  NetId q = b.dff(x, c, V::V1, "r0");
  b.output(q);

  std::string v1 = to_verilog(nl);
  Netlist nl2 = read_verilog(v1);
  nl2.check();
  std::string v2 = to_verilog(nl2);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(nl2.num_live_cells(), nl.num_live_cells());
  EXPECT_EQ(nl2.inputs().size(), 2u);
  EXPECT_EQ(nl2.outputs().size(), 1u);
  // init attribute survived.
  CellId r0 = nl2.net(nl2.outputs()[0]).driver;
  EXPECT_EQ(nl2.cell(r0).init, V::V1);
}

TEST(Writer, RoundTripMacros) {
  Netlist nl("top");
  Builder b(nl);
  std::vector<NetId> addr;
  for (int i = 0; i < 3; ++i) addr.push_back(b.input(cat("a", i)));
  auto data = b.rom(addr, 8, {0x12, 0x34, 0xff, 0x00, 0xab}, "im");
  for (NetId d : data) b.output(d);

  std::string v1 = to_verilog(nl);
  Netlist nl2 = read_verilog(v1);
  nl2.check();
  EXPECT_EQ(to_verilog(nl2), v1);
  CellId rom = nl2.find_cell("im");
  ASSERT_TRUE(rom.valid());
  const auto& pl = nl2.payload(nl2.cell(rom).payload);
  ASSERT_EQ(pl.size(), 8u);
  EXPECT_EQ(pl[1], 0x34u);
  EXPECT_EQ(pl[4], 0xabu);
  EXPECT_EQ(pl[7], 0u);  // zero-padded
}

TEST(Writer, DotContainsCells) {
  Netlist nl("top");
  Builder b(nl);
  NetId a = b.input("a");
  b.output(b.inv(a, "y"));
  std::ostringstream os;
  write_dot(nl, os);
  EXPECT_NE(os.str().find("INV"), std::string::npos);
  EXPECT_NE(os.str().find("digraph"), std::string::npos);
}

TEST(Reader, RejectsMalformed) {
  EXPECT_THROW(read_verilog("garbage"), Error);
  EXPECT_THROW(read_verilog("module \\m ( input \\a ); BOGUS \\u ();"), Error);
  EXPECT_THROW(
      read_verilog("module \\m ( input \\a );\n INV \\u ( .A(\\zzz ), .Y(\\a ) );\nendmodule"),
      Error);  // unknown net zzz
}

/// A tiny valid module with one instance line substituted in.
std::string one_cell_module(const std::string& inst) {
  return cat("module \\m (\n  input \\a ,\n  output \\y \n);\n", inst,
             "\nendmodule\n");
}

TEST(Reader, CorruptNumbersAreReportedNotFatal) {
  // Every case must throw desyn::Error — never an uncaught
  // std::invalid_argument / std::out_of_range or an abort.
  const char* cases[] = {
      // Arity suffix overflowing int (the old std::stoi call site).
      "AND99999999999999999999 \\u ( .A0(\\a ), .A1(\\a ), .Y(\\y ) );",
      // Arity outside the library's [2, 8].
      "AND1 \\u ( .A0(\\a ), .Y(\\y ) );",
      "AND9 \\u ( .A0(\\a ), .Y(\\y ) );",
      // Arity suffix on a fixed-arity kind.
      "INV3 \\u ( .A(\\a ), .Y(\\y ) );",
      // Attribute value garbage / overflow.
      "(* init = 99999999999999999999999999 *) LATCH \\u ( .D(\\a ), .EN(\\a ), .Q(\\y ) );",
      "(* init = 7 *) LATCH \\u ( .D(\\a ), .EN(\\a ), .Q(\\y ) );",
      "(* p0 = 999999 *) ROM \\u ( .A0(\\a ), .D0(\\y ) );",
      // Payload: non-hex word, and word count not matching 2^p0.
      "(* p0 = 1, p1 = 1, payload = \"zz,1\" *) ROM \\u ( .A0(\\a ), .D0(\\y ) );",
      "(* p0 = 2, p1 = 1, payload = \"1,2\" *) ROM \\u ( .A0(\\a ), .A1(\\a ), .D0(\\y ) );",
      // Memory without contents (would index payload(-1) downstream).
      "(* p0 = 1, p1 = 1 *) ROM \\u ( .A0(\\a ), .D0(\\y ) );",
  };
  for (const char* inst : cases) {
    EXPECT_THROW(read_verilog(one_cell_module(inst)), Error) << inst;
  }
}

TEST(Reader, ErrorsNameSourceAndLine) {
  try {
    read_verilog(one_cell_module("INV3 \\u ( .A(\\a ), .Y(\\y ) );"),
                 "broken.v");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // The instance sits on line 5 of the synthesized module text.
    EXPECT_NE(std::string(e.what()).find("broken.v:5"), std::string::npos)
        << e.what();
  }
}

TEST(Writer, RoundTripPropertyOverCircuitSuite) {
  // The sweep CLI reads and writes whole netlists; every circuit of the
  // suite must survive a write -> read cycle with ids, cell kinds and pin
  // order preserved (and the second write byte-identical).
  for (const circuits::Suite& s : circuits::scaling_suite()) {
    const Netlist& nl = s.circuit.netlist;
    std::string v1 = to_verilog(nl);
    Netlist back = read_verilog(v1, s.name + ".v");
    back.check();
    EXPECT_EQ(to_verilog(back), v1) << s.name;

    ASSERT_EQ(back.inputs().size(), nl.inputs().size()) << s.name;
    for (size_t i = 0; i < nl.inputs().size(); ++i) {
      EXPECT_EQ(back.net(back.inputs()[i]).name, nl.net(nl.inputs()[i]).name);
    }
    ASSERT_EQ(back.outputs().size(), nl.outputs().size()) << s.name;
    for (size_t i = 0; i < nl.outputs().size(); ++i) {
      EXPECT_EQ(back.net(back.outputs()[i]).name,
                nl.net(nl.outputs()[i]).name);
    }

    std::vector<CellId> orig, rt;
    for (CellId c : nl.cells()) orig.push_back(c);
    for (CellId c : back.cells()) rt.push_back(c);
    ASSERT_EQ(rt.size(), orig.size()) << s.name;
    for (size_t i = 0; i < orig.size(); ++i) {
      const CellData& a = nl.cell(orig[i]);
      const CellData& b = back.cell(rt[i]);
      ASSERT_EQ(b.kind, a.kind) << s.name << " cell " << a.name;
      EXPECT_EQ(b.name, a.name) << s.name;
      EXPECT_EQ(b.init, a.init) << s.name << " cell " << a.name;
      EXPECT_EQ(b.p0, a.p0);
      EXPECT_EQ(b.p1, a.p1);
      EXPECT_EQ(b.group, a.group) << s.name << " cell " << a.name;
      ASSERT_EQ(b.ins.size(), a.ins.size()) << s.name << " cell " << a.name;
      for (size_t k = 0; k < a.ins.size(); ++k) {
        EXPECT_EQ(back.net(b.ins[k]).name, nl.net(a.ins[k]).name)
            << s.name << " cell " << a.name << " pin " << k;
      }
      ASSERT_EQ(b.outs.size(), a.outs.size());
      for (size_t k = 0; k < a.outs.size(); ++k) {
        EXPECT_EQ(back.net(b.outs[k]).name, nl.net(a.outs[k]).name)
            << s.name << " cell " << a.name << " out " << k;
      }
      if (a.payload >= 0) {
        ASSERT_GE(b.payload, 0) << s.name << " cell " << a.name;
        EXPECT_EQ(back.payload(b.payload), nl.payload(a.payload));
      }
    }
  }
}

TEST(Netlist, PayloadStorage) {
  Netlist nl("t");
  int32_t p = nl.add_payload({1, 2, 3});
  EXPECT_EQ(nl.payload(p).size(), 3u);
  EXPECT_EQ(nl.payload(p)[2], 3u);
}

// ---------------------------------------------------------------------------
// content_hash — the flow engine's cache-key primitive. Representation
// independent, content sensitive (see netlist/hash.h).
// ---------------------------------------------------------------------------

/// Two-flip-flop toy with one XOR; `swapped` reverses every insertion
/// order the builder controls without changing the circuit.
Netlist hash_toy(bool swapped, const std::string& module = "toy") {
  Netlist nl(module);
  Builder b(nl);
  if (swapped) {
    NetId d1 = b.input("d1");
    NetId d0 = b.input("d0");
    NetId clk = b.input("clk");
    NetId qb = b.dff(d1, clk, cell::V::V1, "r.b");
    NetId qa = b.dff(d0, clk, cell::V::V0, "r.a");
    NetId x = b.xor_(qa, qb, "x");
    b.output(x);
  } else {
    NetId clk = b.input("clk");
    NetId d0 = b.input("d0");
    NetId d1 = b.input("d1");
    NetId qa = b.dff(d0, clk, cell::V::V0, "r.a");
    NetId qb = b.dff(d1, clk, cell::V::V1, "r.b");
    NetId x = b.xor_(qa, qb, "x");
    b.output(x);
  }
  return nl;
}

CellId cell_named(const Netlist& nl, std::string_view name) {
  for (CellId c : nl.cells()) {
    if (nl.cell(c).name == name) return c;
  }
  return {};
}

TEST(ContentHash, InsertionOrderIndependent) {
  EXPECT_EQ(content_hash(hash_toy(false)), content_hash(hash_toy(true)));
}

TEST(ContentHash, SurvivesVerilogRoundTripOverCircuitSuite) {
  // read_verilog builds a fresh representation (new ids, fresh payload
  // table): the canonical hash must not notice.
  for (const circuits::Suite& s : circuits::scaling_suite()) {
    const Netlist& nl = s.circuit.netlist;
    Netlist back = read_verilog(to_verilog(nl), s.name + ".v");
    EXPECT_EQ(content_hash(back), content_hash(nl)) << s.name;
  }
}

TEST(ContentHash, SensitiveToEveryContentField) {
  const Hash256 base = content_hash(hash_toy(false));

  EXPECT_NE(content_hash(hash_toy(false, "toy2")), base) << "module name";

  Netlist kind = hash_toy(false);
  kind.set_kind(cell_named(kind, "x"), cell::Kind::And);
  EXPECT_NE(content_hash(kind), base) << "cell kind";

  Netlist init = hash_toy(false);
  init.set_init(cell_named(init, "r.a"), cell::V::V1);
  EXPECT_NE(content_hash(init), base) << "init value";

  Netlist rewired(hash_toy(false).name());
  {
    // Same cells, one XOR pin moved from r.a's output to d0 directly.
    Builder b(rewired);
    NetId clk = b.input("clk");
    NetId d0 = b.input("d0");
    NetId d1 = b.input("d1");
    (void)b.dff(d0, clk, cell::V::V0, "r.a");
    NetId qb = b.dff(d1, clk, cell::V::V1, "r.b");
    NetId x = b.xor_(d0, qb, "x");
    b.output(x);
  }
  EXPECT_NE(content_hash(rewired), base) << "pin connectivity";
}

/// Two-word ROM indexed by one address bit; `lut` is the contents.
Netlist rom_toy(std::vector<uint64_t> lut) {
  Netlist nl("romtoy");
  Builder b(nl);
  NetId a = b.input("a");
  std::vector<NetId> addr = {a};
  auto out = b.rom(addr, 2, std::move(lut), "lut");
  b.output(b.xor_(out[0], out[1], "x"));
  return nl;
}

TEST(ContentHash, SensitiveToGroupAndPayload) {
  const Hash256 base = content_hash(rom_toy({2, 1}));

  // Same structure, one ROM bit flipped: only the payload table differs.
  EXPECT_NE(content_hash(rom_toy({3, 1})), base) << "payload word";

  Netlist grouped = rom_toy({2, 1});
  grouped.set_group(cell_named(grouped, "x"), 7);
  EXPECT_NE(content_hash(grouped), base) << "group attribute";
}

}  // namespace
}  // namespace desyn::nl
