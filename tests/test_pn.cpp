#include "pn/petri.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "base/rng.h"

#include "cell/tech.h"
#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "pn/analysis.h"
#include "pn/mcr.h"

namespace desyn::pn {
namespace {

/// Two-transition ring: a -> b -> a with tokens/delays as given.
MarkedGraph ring2(int t_ab, int t_ba, Ps d_ab = 0, Ps d_ba = 0) {
  MarkedGraph mg("ring2");
  TransId a = mg.add_transition("a");
  TransId b = mg.add_transition("b");
  mg.add_arc(a, b, t_ab, d_ab);
  mg.add_arc(b, a, t_ba, d_ba);
  return mg;
}

TEST(MarkedGraph, TokenGameBasics) {
  MarkedGraph mg = ring2(1, 0);
  TransId a = mg.find("a");
  TransId b = mg.find("b");
  Marking m = mg.initial_marking();
  EXPECT_FALSE(mg.enabled(a, m));
  EXPECT_TRUE(mg.enabled(b, m));
  mg.fire(b, m);
  EXPECT_TRUE(mg.enabled(a, m));
  EXPECT_FALSE(mg.enabled(b, m));
  mg.fire(a, m);
  EXPECT_EQ(m, mg.initial_marking());  // ring returns to start
}

TEST(MarkedGraph, EnabledSetAndFind) {
  MarkedGraph mg = ring2(1, 1);
  Marking m = mg.initial_marking();
  EXPECT_EQ(mg.enabled_set(m).size(), 2u);
  EXPECT_TRUE(mg.find("a").valid());
  EXPECT_FALSE(mg.find("zz").valid());
}

TEST(Analysis, LivenessDetectsTokenFreeCycle) {
  EXPECT_TRUE(is_live(ring2(1, 0)));
  EXPECT_TRUE(is_live(ring2(1, 1)));
  EXPECT_FALSE(is_live(ring2(0, 0)));
}

TEST(Analysis, LivenessOnChordedGraph) {
  // Cycle a->b->c->a with token only on c->a, plus token-free chord a->c...
  // the chord creates cycle a->c->a which needs the c->a token: live.
  MarkedGraph mg("g");
  TransId a = mg.add_transition("a");
  TransId b = mg.add_transition("b");
  TransId c = mg.add_transition("c");
  mg.add_arc(a, b, 0);
  mg.add_arc(b, c, 0);
  mg.add_arc(c, a, 1);
  mg.add_arc(a, c, 0);
  EXPECT_TRUE(is_live(mg));
  // A token-free chord c->b closes token-free cycle b->c->b: dead.
  mg.add_arc(c, b, 0);
  EXPECT_FALSE(is_live(mg));
}

TEST(Analysis, PlaceBoundsAndSafety) {
  MarkedGraph mg1 = ring2(1, 0);
  EXPECT_EQ(place_bound(mg1, ArcId(0)), 1);
  EXPECT_EQ(place_bound(mg1, ArcId(1)), 1);
  EXPECT_TRUE(is_safe(mg1));

  MarkedGraph mg2 = ring2(2, 0);  // two tokens circulate: 2-bounded
  EXPECT_EQ(place_bound(mg2, ArcId(0)), 2);
  EXPECT_FALSE(is_safe(mg2));

  // Arc on no cycle: unbounded.
  MarkedGraph mg3("g");
  TransId a = mg3.add_transition("a");
  TransId b = mg3.add_transition("b");
  ArcId dangling = mg3.add_arc(a, b, 0);
  EXPECT_EQ(place_bound(mg3, dangling), -1);
  EXPECT_FALSE(is_safe(mg3));
}

TEST(Analysis, ExploreCountsReachableMarkings) {
  // Safe 2-ring: exactly 2 markings.
  auto res = explore(ring2(1, 0));
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.states, 2u);
  EXPECT_EQ(res.max_tokens, 1);

  // 2 tokens in a 2-ring: markings (2,0),(1,1),(0,2) = 3.
  auto res2 = explore(ring2(2, 0));
  EXPECT_TRUE(res2.complete);
  EXPECT_EQ(res2.states, 3u);
  EXPECT_EQ(res2.max_tokens, 2);
}

TEST(Analysis, ExploreHitsStateLimit) {
  auto res = explore(ring2(2, 0), 2);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.states, 2u);
}

TEST(Analysis, AdmitsSequenceReplay) {
  MarkedGraph mg = ring2(1, 0);
  TransId a = mg.find("a");
  TransId b = mg.find("b");
  std::vector<TransId> good = {b, a, b, a};
  std::vector<TransId> bad = {b, b};
  EXPECT_EQ(admits_sequence(mg, good), -1);
  EXPECT_EQ(admits_sequence(mg, bad), 1);
  std::vector<TransId> bad0 = {a};
  EXPECT_EQ(admits_sequence(mg, bad0), 0);
}

TEST(Mcr, SimpleRingRatio) {
  // One token, total delay 300: period 300.
  auto r = max_cycle_ratio(ring2(1, 0, 100, 200));
  EXPECT_NEAR(r.ratio, 300.0, 0.01);
  EXPECT_FALSE(r.cycle.empty());

  // Two tokens, same delays: period 150.
  auto r2 = max_cycle_ratio(ring2(1, 1, 100, 200));
  EXPECT_NEAR(r2.ratio, 150.0, 0.01);
}

TEST(Mcr, MaxOverCyclesWins) {
  // Two rings sharing transition a; slower ring dominates.
  MarkedGraph mg("g");
  TransId a = mg.add_transition("a");
  TransId b = mg.add_transition("b");
  TransId c = mg.add_transition("c");
  mg.add_arc(a, b, 1, 100);
  mg.add_arc(b, a, 0, 100);  // ratio 200
  mg.add_arc(a, c, 1, 500);
  mg.add_arc(c, a, 0, 400);  // ratio 900
  auto r = max_cycle_ratio(mg);
  EXPECT_NEAR(r.ratio, 900.0, 0.01);
}

TEST(Mcr, ZeroDelayGraph) {
  auto r = max_cycle_ratio(ring2(1, 0, 0, 0));
  EXPECT_NEAR(r.ratio, 0.0, 1e-9);
}

TEST(Mcr, EarliestScheduleMatchesRatio) {
  MarkedGraph mg = ring2(1, 0, 120, 180);
  auto sched = earliest_schedule(mg, 50);
  // Steady-state period between consecutive firings of "a".
  const auto& fa = sched[mg.find("a").value()];
  Ps period = fa[49] - fa[48];
  auto r = max_cycle_ratio(mg);
  EXPECT_EQ(period, static_cast<Ps>(r.ratio + 0.5));
}

TEST(Mcr, EarliestScheduleRespectsCausality) {
  MarkedGraph mg = ring2(1, 0, 100, 50);
  auto sched = earliest_schedule(mg, 3);
  TransId a = mg.find("a");
  TransId b = mg.find("b");
  // b fires first (token on a->b available at 0): b@0, a@50, b@150, ...
  EXPECT_EQ(sched[b.value()][0], 0);
  EXPECT_EQ(sched[a.value()][0], 50);
  EXPECT_EQ(sched[b.value()][1], 150);
  EXPECT_EQ(sched[a.value()][1], 200);
}

TEST(Mcr, ReferenceAgreesOnClassicCases) {
  auto r = max_cycle_ratio_reference(ring2(1, 0, 100, 200));
  EXPECT_NEAR(r.ratio, 300.0, 1e-9);
  auto r2 = max_cycle_ratio_reference(ring2(1, 1, 100, 200));
  EXPECT_NEAR(r2.ratio, 150.0, 1e-9);
  auto rz = max_cycle_ratio_reference(ring2(1, 0, 0, 0));
  EXPECT_NEAR(rz.ratio, 0.0, 1e-12);
}

/// Both solvers must return a *genuine* critical cycle: a closed arc walk
/// whose exact delay/token ratio equals the reported ratio (the old
/// extraction re-ran detection at an epsilon-shifted lambda and could hand
/// back any positive — not critical — cycle).
void expect_genuine_critical_cycle(const MarkedGraph& mg,
                                   const CycleRatioResult& r) {
  ASSERT_FALSE(r.cycle_arcs.empty()) << mg.name();
  ASSERT_EQ(r.cycle.size(), r.cycle_arcs.size()) << mg.name();
  for (size_t i = 0; i < r.cycle_arcs.size(); ++i) {
    const Arc& a = mg.arc(r.cycle_arcs[i]);
    EXPECT_EQ(a.from, r.cycle[i]) << mg.name();
    EXPECT_EQ(a.to, r.cycle[(i + 1) % r.cycle.size()]) << mg.name();
  }
  EXPECT_NEAR(cycle_ratio(mg, r.cycle_arcs), r.ratio,
              1e-9 * (1.0 + r.ratio))
      << mg.name();
}

TEST(Mcr, CriticalCycleIsGenuine) {
  // Two rings sharing a; the slow ring (ratio 900) must be the one handed
  // back, not merely *a* positive cycle like the fast ring (ratio 200).
  MarkedGraph mg("g");
  TransId a = mg.add_transition("a");
  TransId b = mg.add_transition("b");
  TransId c = mg.add_transition("c");
  mg.add_arc(a, b, 1, 100);
  mg.add_arc(b, a, 0, 100);
  ArcId slow1 = mg.add_arc(a, c, 1, 500);
  ArcId slow2 = mg.add_arc(c, a, 0, 400);
  for (auto solve : {&max_cycle_ratio, &max_cycle_ratio_reference}) {
    auto r = solve(mg);
    EXPECT_NEAR(r.ratio, 900.0, 1e-6);
    expect_genuine_critical_cycle(mg, r);
    std::vector<ArcId> sorted = r.cycle_arcs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<ArcId>{slow1, slow2}));
  }
}

TEST(Dot, ContainsTransitionsAndTokens) {
  MarkedGraph mg = ring2(1, 0, 10, 0);
  std::string dot = mg.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("*"), std::string::npos);   // token bullet
  EXPECT_NE(dot.find("10ps"), std::string::npos);
}

}  // namespace
}  // namespace desyn::pn

namespace desyn::pn {
namespace {

/// Random strongly-connected marked graphs: a ring plus random chords.
MarkedGraph random_mg(uint64_t seed, int n, int chords) {
  Rng rng(seed);
  MarkedGraph mg(cat("rand", seed));
  for (int i = 0; i < n; ++i) mg.add_transition(cat("t", i));
  for (int i = 0; i < n; ++i) {
    mg.add_arc(TransId(static_cast<uint32_t>(i)),
               TransId(static_cast<uint32_t>((i + 1) % n)),
               rng.flip(0.6) ? 1 : 0);
  }
  for (int c = 0; c < chords; ++c) {
    mg.add_arc(TransId(static_cast<uint32_t>(rng.below(static_cast<uint64_t>(n)))),
               TransId(static_cast<uint32_t>(rng.below(static_cast<uint64_t>(n)))),
               static_cast<int>(rng.below(2)));
  }
  return mg;
}

class RandomMg : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMg, StructuralAnalysesAgreeWithExploration) {
  MarkedGraph mg = random_mg(GetParam(), 6, 4);
  bool live = is_live(mg);
  auto reach = explore(mg, 1 << 16);
  if (!reach.complete) return;  // unbounded: skip behavioural comparison

  // Safety (all place bounds == 1) must agree with the max token count
  // seen during exhaustive exploration, provided the net is live (dead
  // sub-structures never exercise their bounds).
  if (live) {
    EXPECT_EQ(is_safe(mg), reach.max_tokens <= 1) << mg.to_dot();
  }

  // Structural place bounds are upper bounds on observed token counts.
  int max_bound = 0;
  bool unbounded = false;
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    int b = place_bound(mg, ArcId(a));
    if (b < 0) {
      unbounded = true;
    } else {
      max_bound = std::max(max_bound, b);
    }
  }
  if (!unbounded && live) {
    EXPECT_LE(reach.max_tokens, max_bound) << mg.to_dot();
  }

  // A live safe MG admits an earliest schedule in which every transition
  // fires every round. Simultaneous (equal-time) firings are concurrent,
  // so replay greedily: repeatedly fire the earliest pending firing that is
  // enabled; the token game must never get stuck.
  if (live && is_safe(mg)) {
    auto sched = earliest_schedule(mg, 3);
    struct Firing {
      Ps at;
      uint32_t t;
      bool done;
    };
    std::vector<Firing> fires;
    for (uint32_t t = 0; t < mg.num_transitions(); ++t) {
      for (int k = 0; k < 3; ++k) {
        fires.push_back({sched[t][static_cast<size_t>(k)], t, false});
      }
    }
    std::stable_sort(fires.begin(), fires.end(),
                     [](const Firing& x, const Firing& y) { return x.at < y.at; });
    Marking m = mg.initial_marking();
    size_t remaining = fires.size();
    while (remaining > 0) {
      bool progressed = false;
      for (Firing& f : fires) {
        if (f.done || !mg.enabled(TransId(f.t), m)) continue;
        mg.fire(TransId(f.t), m);
        f.done = true;
        --remaining;
        progressed = true;
        break;
      }
      ASSERT_TRUE(progressed) << "schedule replay stuck:\n" << mg.to_dot();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMg,
                         ::testing::Range<uint64_t>(1, 40));

/// Random *live* timed marked graphs: every arc carries at least one
/// token, so every cycle does too. Seeds ending in 0 draw all delays zero
/// (zero-delay-cycle edge case); seeds ending in 1 draw a plain single
/// ring (one-cycle edge case).
MarkedGraph random_timed_mg(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  const int n = 4 + static_cast<int>(rng.below(12));
  const bool zero_delay = seed % 10 == 0;
  const bool single_ring = seed % 10 == 1;
  const int chords = single_ring ? 0 : 2 + static_cast<int>(rng.below(8));
  MarkedGraph mg(cat("randtimed", seed));
  for (int i = 0; i < n; ++i) mg.add_transition(cat("t", i));
  auto delay = [&]() -> Ps {
    return zero_delay ? 0 : static_cast<Ps>(rng.below(1000));
  };
  for (int i = 0; i < n; ++i) {
    mg.add_arc(TransId(static_cast<uint32_t>(i)),
               TransId(static_cast<uint32_t>((i + 1) % n)),
               1 + static_cast<int>(rng.below(2)), delay());
  }
  for (int c = 0; c < chords; ++c) {
    mg.add_arc(
        TransId(static_cast<uint32_t>(rng.below(static_cast<uint64_t>(n)))),
        TransId(static_cast<uint32_t>(rng.below(static_cast<uint64_t>(n)))),
        1 + static_cast<int>(rng.below(2)), delay());
  }
  return mg;
}

class HowardVsReference : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HowardVsReference, SolversAgreeAndCyclesAreGenuine) {
  MarkedGraph mg = random_timed_mg(GetParam());
  ASSERT_TRUE(is_live(mg));
  auto howard = max_cycle_ratio(mg);
  auto ref = max_cycle_ratio_reference(mg);
  EXPECT_NEAR(howard.ratio, ref.ratio, 1e-6 * (1.0 + howard.ratio))
      << mg.to_dot();
  expect_genuine_critical_cycle(mg, howard);
  expect_genuine_critical_cycle(mg, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HowardVsReference,
                         ::testing::Range<uint64_t>(0, 60));

/// Regression for the fragile extraction bug: on every suite circuit's
/// timed control model, both solvers must agree and hand back a critical
/// cycle whose exact delay/token ratio is the returned period.
TEST(Mcr, SuiteControlModelCriticalCyclesAreExact) {
  const cell::Tech& t = cell::Tech::generic90();
  for (auto& s : circuits::scaling_suite()) {
    flow::DesyncResult dr =
        flow::desynchronize(s.circuit.netlist, s.circuit.clock, t);
    MarkedGraph mg = flow::timed_control_model(dr, t);
    auto howard = max_cycle_ratio(mg);
    auto ref = max_cycle_ratio_reference(mg);
    EXPECT_NEAR(howard.ratio, ref.ratio, 1e-6 * (1.0 + howard.ratio))
        << s.name;
    expect_genuine_critical_cycle(mg, howard);
    expect_genuine_critical_cycle(mg, ref);
  }
}

// ---------------------------------------------------------------------------
// McrContext: warm-started solves after merge deltas are bit-equal to cold
// solves, and their cycles are genuine.
// ---------------------------------------------------------------------------

/// Merge transition `drop` into `keep` the way the partition optimizer's
/// delta scorer does: same transition count (drop keeps its id but loses
/// every arc), every arc re-pointed in place so *arc ids are preserved* —
/// the delta shape McrContext::resolve's warm start expects.
MarkedGraph merge_transitions(const MarkedGraph& mg, uint32_t keep,
                              uint32_t drop) {
  MarkedGraph out(cat(mg.name(), "_m", keep, "_", drop));
  for (uint32_t t = 0; t < mg.num_transitions(); ++t) {
    out.add_transition(cat("t", t));
  }
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    uint32_t f = arc.from.value() == drop ? keep : arc.from.value();
    uint32_t t = arc.to.value() == drop ? keep : arc.to.value();
    out.add_arc(TransId(f), TransId(t), arc.tokens, arc.delay);
  }
  return out;
}

class WarmVsCold : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarmVsCold, MergeDeltasResolveBitEqualToColdSolves) {
  const uint64_t seed = GetParam();
  MarkedGraph cur = random_timed_mg(seed);
  ASSERT_TRUE(is_live(cur));
  const uint32_t n = static_cast<uint32_t>(cur.num_transitions());

  McrContext ctx;
  McrFlat flat = flatten(cur);
  EXPECT_EQ(ctx.solve(flat.view()).ratio, max_cycle_ratio(cur).ratio);

  // Random merge deltas in sequence: re-solve warm through the node map,
  // compare bit-for-bit against a cold solve of the merged graph. Every
  // arc carries a token (random_timed_mg), so liveness survives merging
  // (self-loops included).
  Rng rng(seed * 0x2545f4914f6cdd1dull + 7);
  std::vector<uint32_t> node_map(n);
  std::vector<char> dead(n, 0);
  for (int step = 0; step < 3 && n >= 2; ++step) {
    uint32_t keep = static_cast<uint32_t>(rng.below(n));
    uint32_t drop = static_cast<uint32_t>(rng.below(n));
    if (keep == drop || dead[keep] || dead[drop]) continue;
    dead[drop] = 1;
    cur = merge_transitions(cur, keep, drop);
    ASSERT_TRUE(is_live(cur));
    flat = flatten(cur);
    for (uint32_t i = 0; i < n; ++i) node_map[i] = i;
    node_map[drop] = keep;
    CycleRatioResult warm = ctx.resolve(flat.view(), node_map);
    CycleRatioResult cold = max_cycle_ratio(cur);
    EXPECT_EQ(warm.ratio, cold.ratio)
        << "warm/cold ratios diverge after merging " << drop << " into "
        << keep << ":\n"
        << cur.to_dot();
    expect_genuine_critical_cycle(cur, warm);
  }
  EXPECT_GE(ctx.warm_solves() + ctx.cold_solves(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmVsCold,
                         ::testing::Range<uint64_t>(0, 80));

TEST(McrContext, StructuralInvalidationFallsBackToColdSolve) {
  MarkedGraph mg = random_timed_mg(5);
  McrContext ctx;
  McrFlat flat = flatten(mg);
  ctx.solve(flat.view());
  size_t cold_before = ctx.cold_solves();
  // A node map of the wrong size cannot seed the warm start: the context
  // must fall back to (and count) a cold solve, with the same result.
  std::vector<uint32_t> bogus(mg.num_transitions() + 3, 0);
  CycleRatioResult r = ctx.resolve(flat.view(), bogus);
  EXPECT_EQ(ctx.cold_solves(), cold_before + 1);
  EXPECT_EQ(r.ratio, max_cycle_ratio(mg).ratio);
}

// ---------------------------------------------------------------------------
// McrBatch: structure-shared Monte-Carlo solves are bit-equal to per-sample
// cold solves, every cycle is genuine, and results are byte-identical at
// any worker count.
// ---------------------------------------------------------------------------

/// Sampled delay rows: counter-based jitter (+/-20%) around the nominal
/// arc delays, a pure function of (seed, sample, arc) like the real
/// variation model's draws.
std::vector<Ps> sampled_rows(const McrFlat& flat, uint64_t seed,
                             size_t samples) {
  const size_t m = flat.delay.size();
  std::vector<Ps> rows(samples * m);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t j = 0; j < m; ++j) {
      const double f = 0.8 + 0.4 * rng_unit(seed, j, s);
      rows[s * m + j] = static_cast<Ps>(
          std::llround(static_cast<double>(flat.delay[j]) * f));
    }
  }
  return rows;
}

class BatchVsCold : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchVsCold, WarmBlocksBitEqualColdOracle) {
  const uint64_t seed = GetParam();
  MarkedGraph mg = random_timed_mg(seed);
  ASSERT_TRUE(is_live(mg));
  const McrFlat flat = flatten(mg);
  const McrBatch batch(flat.view());
  const size_t m = batch.num_arcs();
  // Sample counts straddling the warm-start block size (kBlock = 32):
  // single sample, partial block, many full blocks.
  for (size_t samples : {size_t{1}, size_t{17}, size_t{256}}) {
    const std::vector<Ps> rows = sampled_rows(flat, seed, samples);
    const auto res = batch.solve_all(rows, samples, 1);
    ASSERT_EQ(res.size(), samples);
    for (size_t s = 0; s < samples; ++s) {
      const std::span<const Ps> row(rows.data() + s * m, m);
      const CycleRatioResult cold = batch.solve_one_cold(row);
      EXPECT_EQ(res[s].ratio, cold.ratio)  // bit-equal, not just close
          << mg.name() << " sample " << s << "/" << samples;
      // The cycle is genuine for *this row's* delays: its exact D/T
      // quotient is the returned ratio.
      const McrArcs g{flat.num_nodes, flat.from, flat.to, flat.tokens, row};
      ASSERT_FALSE(res[s].cycle_arcs.empty());
      EXPECT_EQ(cycle_ratio(g, res[s].cycle_arcs), res[s].ratio)
          << mg.name() << " sample " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchVsCold,
                         ::testing::Range<uint64_t>(0, 20));

TEST(McrBatch, ByteIdenticalAcrossJobs) {
  for (uint64_t seed : {uint64_t{3}, uint64_t{12}}) {
    MarkedGraph mg = random_timed_mg(seed);
    ASSERT_TRUE(is_live(mg));
    const McrFlat flat = flatten(mg);
    const McrBatch batch(flat.view());
    const size_t samples = 100;  // straddles several kBlock granules
    const std::vector<Ps> rows = sampled_rows(flat, seed, samples);
    const auto serial = batch.solve_all(rows, samples, 1);
    for (int jobs : {2, 4}) {
      const auto par = batch.solve_all(rows, samples, jobs);
      ASSERT_EQ(par.size(), serial.size()) << "jobs " << jobs;
      for (size_t s = 0; s < samples; ++s) {
        EXPECT_EQ(par[s].ratio, serial[s].ratio) << "jobs " << jobs;
        EXPECT_EQ(par[s].cycle, serial[s].cycle) << "jobs " << jobs;
        EXPECT_EQ(par[s].cycle_arcs, serial[s].cycle_arcs) << "jobs " << jobs;
      }
    }
  }
}

TEST(McrContext, ProbeLeavesBaselineUntouched) {
  MarkedGraph mg = random_timed_mg(9);
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());
  McrContext ctx;
  McrFlat fine = flatten(mg);
  double base = ctx.solve(fine.view()).ratio;

  MarkedGraph merged = merge_transitions(mg, 0, 1);
  ASSERT_TRUE(is_live(merged));
  McrFlat mflat = flatten(merged);
  std::vector<uint32_t> node_map(n);
  for (uint32_t i = 0; i < n; ++i) node_map[i] = i;
  node_map[1] = 0;
  McrScratch scratch;
  double probed = ctx.probe(mflat.view(), node_map, scratch).ratio;
  EXPECT_EQ(probed, max_cycle_ratio(merged).ratio);
  // The baseline still describes the unmerged graph: re-solving it warm
  // through the identity map reproduces the original ratio.
  std::vector<uint32_t> ident(n);
  for (uint32_t i = 0; i < n; ++i) ident[i] = i;
  EXPECT_EQ(ctx.resolve(fine.view(), ident).ratio, base);
}

}  // namespace
}  // namespace desyn::pn
