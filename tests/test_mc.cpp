// Variation-aware timing: flow::mc_analysis and flow::optimize_margins.
//
// The acceptance contract of the margin optimizer: on real circuits it
// recovers delay-line area (or period) against the uniform-margin baseline
// at equal zero-violation yield, and the flow at the optimized per-bank
// margins stays flow-equivalent to the synchronous reference under every
// protocol.
#include "flow/mc.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cell/tech.h"
#include "circuits/circuits.h"
#include "dlx/cpu_builder.h"
#include "dlx/programs.h"
#include "flow/engine.h"
#include "pn/mcr.h"
#include "verif/flow_equivalence.h"

namespace desyn::flow {
namespace {

using cell::Tech;

/// The scaling-suite fir8x12 fabric: adder chains deep enough that the
/// 10% margin exceeds one DELAY quantum, so there is genuine slack for the
/// optimizer to recover. (On shallow fabrics like the register mesh the
/// margin is smaller than the variation spread and the optimizer correctly
/// shaves nothing — that case is covered by the mesh sweep tests staying
/// at zero violations.)
circuits::Circuit test_fabric() { return circuits::fir_filter(8, 12); }

McOptions quick_mc() {
  McOptions mc;
  mc.samples = 64;
  mc.seed = 7;
  return mc;
}

TEST(McAnalysis, NominalSampleReproducesTimedModel) {
  const Tech& t = Tech::generic90();
  circuits::Circuit c = circuits::pipeline(6, 8, 2);
  DesyncResult dr = desynchronize(c.netlist, c.clock, t);
  McOptions mc = quick_mc();
  mc.samples = 8;
  McReport rep = mc_analysis(dr, t, Margins(1.10), mc);
  ASSERT_EQ(rep.samples, 9u);  // 1.0 corner + 8 statistical
  // Sample 0 is the 1.0 corner: every factor is exactly 1, so its period
  // is the nominal hardware timed model's max cycle ratio, bit-for-bit.
  const double nominal =
      pn::max_cycle_ratio(timed_control_model(dr, t)).ratio;
  EXPECT_EQ(rep.nominal_period, nominal);
  EXPECT_EQ(rep.periods[0], nominal);
  // The nominal sample satisfies setup by construction (margin >= 1), so
  // it never counts as a violation and its worst slack is non-negative.
  EXPECT_GE(rep.min_slacks[0], 0.0);
  // Distribution sanity: percentiles are ordered and bracket the samples.
  EXPECT_LE(rep.period.p50, rep.period.p95);
  EXPECT_LE(rep.period.p95, rep.period.max);
  EXPECT_LE(rep.period.min, rep.period.p50);
  EXPECT_GE(rep.yield, 0.0);
  EXPECT_LE(rep.yield, 1.0);
}

TEST(McAnalysis, ByteIdenticalAcrossMcJobs) {
  const Tech& t = Tech::generic90();
  circuits::Circuit c = test_fabric();
  DesyncResult dr = desynchronize(c.netlist, c.clock, t);
  McOptions mc = quick_mc();
  McReport serial = mc_analysis(dr, t, Margins(1.10), mc);
  for (int jobs : {2, 4}) {
    mc.jobs = jobs;
    McReport par = mc_analysis(dr, t, Margins(1.10), mc);
    EXPECT_EQ(par.periods, serial.periods) << "jobs " << jobs;
    EXPECT_EQ(par.min_slacks, serial.min_slacks) << "jobs " << jobs;
    EXPECT_EQ(par.violation_samples, serial.violation_samples);
  }
}

TEST(McAnalysis, CornersScaleThePeriod) {
  const Tech& t = Tech::generic90();
  circuits::Circuit c = circuits::pipeline(4, 6, 2);
  DesyncResult dr = desynchronize(c.netlist, c.clock, t);
  McOptions mc;
  mc.samples = 0;
  mc.corners = {0.9, 1.0, 1.1};
  McReport rep = mc_analysis(dr, t, Margins(1.10), mc);
  ASSERT_EQ(rep.samples, 3u);
  // A global slow corner can only slow the circuit down.
  EXPECT_LT(rep.periods[0], rep.periods[1]);
  EXPECT_LT(rep.periods[1], rep.periods[2]);
}

TEST(McAnalysis, EngineCachesReports) {
  const Tech& t = Tech::generic90();
  Engine engine(t);
  circuits::Circuit c = circuits::pipeline(4, 6, 2);
  DesyncOptions opt;
  McOptions mc = quick_mc();
  auto first = engine.mc(c.netlist, c.clock, opt, mc);
  EXPECT_EQ(engine.counters().mc_runs, 1u);
  EXPECT_EQ(engine.counters().mc_hits, 0u);
  // Same coordinates (jobs differ — excluded from the key): pure hit.
  mc.jobs = 4;
  auto second = engine.mc(c.netlist, c.clock, opt, mc);
  EXPECT_EQ(engine.counters().mc_runs, 1u);
  EXPECT_EQ(engine.counters().mc_hits, 1u);
  EXPECT_EQ(second->periods, first->periods);
  // A different seed is a different distribution: the stage re-runs.
  mc.seed = 99;
  auto third = engine.mc(c.netlist, c.clock, opt, mc);
  EXPECT_EQ(engine.counters().mc_runs, 2u);
  EXPECT_NE(third->periods, first->periods);
}

/// The headline: per-bank margins recover delay-line area at equal
/// zero-violation yield on the mesh fabric and on the DLX processor.
class OptimizeMargins : public ::testing::TestWithParam<ctl::Protocol> {};

TEST_P(OptimizeMargins, RecoversAreaAtEqualYieldOnFabric) {
  const Tech& t = Tech::generic90();
  circuits::Circuit c = test_fabric();
  DesyncOptions opt;
  opt.protocol = GetParam();
  MarginOptResult res =
      optimize_margins(c.netlist, c.clock, t, opt, quick_mc());

  // Measurable delay-line area recovery...
  EXPECT_GT(res.banks_shaved, 0u);
  EXPECT_LT(res.delay_cells_after, res.delay_cells_before);
  // ... at equal (and on these circuits, perfect) yield.
  EXPECT_EQ(res.baseline.violation_samples, 0u);
  EXPECT_EQ(res.optimized.violation_samples, 0u);
  EXPECT_EQ(res.optimized.yield, res.baseline.yield);
  // Every produced margin is a legal DesyncOptions::margins entry, never
  // above the global it replaces.
  for (double m : res.margins) {
    EXPECT_TRUE(m == 0.0 || (m >= 1.0 && m <= opt.margin)) << m;
  }
  // Shaving lines cannot slow the handshake down.
  EXPECT_LE(res.optimized.nominal_period, res.baseline.nominal_period);
}

TEST_P(OptimizeMargins, FlowEquivalentAtOptimizedMargins) {
  const Tech& t = Tech::generic90();
  circuits::Circuit c = test_fabric();
  DesyncOptions opt;
  opt.protocol = GetParam();
  MarginOptResult res =
      optimize_margins(c.netlist, c.clock, t, opt, quick_mc());
  ASSERT_GT(res.banks_shaved, 0u);

  verif::FlowEqOptions feq;
  feq.rounds = 30;
  feq.desync.protocol = GetParam();
  feq.desync.margins = res.margins;
  auto eq = verif::check_flow_equivalence(
      c.netlist, c.clock, verif::random_stimulus(11), t, feq);
  EXPECT_TRUE(eq.equivalent)
      << ctl::protocol_name(GetParam()) << ": " << eq.mismatch;
  EXPECT_EQ(eq.desync_setup_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, OptimizeMargins, ::testing::ValuesIn(ctl::kAllProtocols),
    [](const ::testing::TestParamInfo<ctl::Protocol>& info) {
      std::string n = ctl::protocol_name(info.param);
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

TEST(OptimizeMarginsDlx, RecoversAreaAndStaysFlowEquivalent) {
  const Tech& t = Tech::generic90();
  dlx::DlxConfig cfg;
  cfg.regs = 8;  // compact config keeps the double simulation quick
  cfg.imem_bits = 7;
  cfg.dmem_bits = 5;
  nl::Netlist nl("dlx");
  dlx::build_dlx(nl, cfg, dlx::fibonacci_program(6));
  nl::NetId clk = nl.find_net("clk");
  ASSERT_TRUE(clk.valid());

  DesyncOptions opt;
  MarginOptResult res = optimize_margins(nl, clk, t, opt, quick_mc());
  EXPECT_GT(res.banks_shaved, 0u);
  EXPECT_LT(res.delay_cells_after, res.delay_cells_before);
  EXPECT_EQ(res.baseline.violation_samples, 0u);
  EXPECT_EQ(res.optimized.violation_samples, 0u);

  verif::FlowEqOptions feq;
  feq.rounds = 60;
  feq.desync.margins = res.margins;
  auto eq = verif::check_flow_equivalence(
      nl, clk, verif::constant_stimulus(cell::V::V0), t, feq);
  EXPECT_TRUE(eq.equivalent) << eq.mismatch;
  EXPECT_EQ(eq.desync_setup_violations, 0u);
}

}  // namespace
}  // namespace desyn::flow
