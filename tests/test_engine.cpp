// The staged flow engine (flow/engine.h): cached-vs-cold byte identity,
// the ECO fast paths, LRU eviction, and the untrusted on-disk tier.
#include "flow/engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <tuple>

#include "netlist/builder.h"
#include "netlist/writer.h"

namespace desyn::flow {
namespace {

using cell::Kind;
using cell::Tech;
using cell::V;
using nl::Builder;
using nl::Netlist;
using nl::NetId;

/// 3-stage XOR/INV pipeline (the canonical small flow circuit).
Netlist pipeline3(NetId* clock_out) {
  Netlist nl("pipe3");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d0 = b.input("din0");
  NetId d1 = b.input("din1");
  NetId q0a = b.dff(d0, clk, V::V0, "s0.a");
  NetId q0b = b.dff(d1, clk, V::V0, "s0.b");
  NetId x1 = b.xor_(q0a, q0b);
  NetId q1 = b.dff(x1, clk, V::V0, "s1.a");
  NetId q1b = b.dff(q0b, clk, V::V1, "s1.b");
  NetId x2 = b.and_({b.inv(q1), q1b});
  NetId q2 = b.dff(x2, clk, V::V0, "s2.a");
  b.output(q2);
  *clock_out = clk;
  return nl;
}

/// 4-bit ripple counter with enable: feedback loops through the flow.
Netlist counter4(NetId* clock_out) {
  Netlist nl("counter4");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId en = b.input("en");
  std::vector<NetId> qnets(4);
  for (int i = 0; i < 4; ++i) qnets[i] = nl.add_net(cat("cnt.q", i));
  NetId carry = en;
  for (int i = 0; i < 4; ++i) {
    NetId sum = b.xor_(qnets[i], carry);
    carry = b.and_({qnets[i], carry});
    nl.add_cell(Kind::Dff, cat("cnt.r", i), {sum, clk}, {qnets[i]}, V::V0);
  }
  b.output(qnets[3]);
  *clock_out = clk;
  return nl;
}

/// Distinct tiny circuits for cache-pressure tests.
Netlist shifter(int stages, NetId* clock_out) {
  Netlist nl(cat("shift", stages));
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d = b.input("d");
  NetId q = d;
  for (int i = 0; i < stages; ++i) q = b.dff(q, clk, V::V0, cat("s", i, ".r"));
  b.output(q);
  *clock_out = clk;
  return nl;
}

nl::CellId find_kind(const Netlist& nl, Kind k) {
  for (nl::CellId c : nl.cells()) {
    if (nl.cell(c).kind == k) return c;
  }
  return {};
}

std::string fresh_dir(const char* tag) {
  std::filesystem::path p =
      std::filesystem::path(::testing::TempDir()) /
      (std::string("desyn_engine_") + tag + "_" +
       std::to_string(::getpid()));
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

// ---------------------------------------------------------------------------
// Cached vs. cold: every circuit x protocol resubmission is a result-cache
// hit and byte-identical to the cold monolithic reference flow.
// ---------------------------------------------------------------------------

struct CircuitCase {
  const char* name;
  Netlist (*build)(NetId*);
};

class EngineCachedVsCold
    : public ::testing::TestWithParam<std::tuple<ctl::Protocol, CircuitCase>> {
};

TEST_P(EngineCachedVsCold, ResubmissionIsHitAndByteIdentical) {
  auto [proto, c] = GetParam();
  NetId clk;
  Netlist ff = c.build(&clk);
  DesyncOptions opt;
  opt.protocol = proto;

  Engine engine(Tech::generic90());
  FlowOutcome cold = engine.run(ff, clk, opt);
  EXPECT_FALSE(cold.cached);

  FlowOutcome warm = engine.run(ff, clk, opt);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(*warm.verilog, *cold.verilog);

  StageCounters sc = engine.counters();
  EXPECT_EQ(sc.runs, 2u);
  EXPECT_EQ(sc.result_hits, 1u);
  EXPECT_EQ(sc.partition_runs, 1u);
  EXPECT_EQ(sc.synth_runs, 1u);

  // The determinism contract: byte-identical to the cold reference flow.
  DesyncResult ref = desynchronize_reference(ff, clk, Tech::generic90(), opt);
  EXPECT_EQ(*cold.verilog, nl::to_verilog(ref.netlist));

  // The stats mirror the emitted circuit.
  EXPECT_EQ(cold.stats.banks, ref.cg.num_banks());
  EXPECT_EQ(cold.stats.cells_out, ref.netlist.num_live_cells());
  EXPECT_GT(cold.stats.predicted_period_ps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsByCircuits, EngineCachedVsCold,
    ::testing::Combine(::testing::ValuesIn(ctl::kAllProtocols),
                       ::testing::Values(CircuitCase{"pipe3", pipeline3},
                                         CircuitCase{"counter4", counter4})),
    [](const ::testing::TestParamInfo<std::tuple<ctl::Protocol, CircuitCase>>&
           info) {
      std::string n = ctl::protocol_name(std::get<0>(info.param));
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n + "_" + std::get<1>(info.param).name;
    });

// ---------------------------------------------------------------------------
// Cache-key sensitivity: the per-bank margin vector changes the hardware,
// so it must key every stage from adjacency on — but never the partition
// stage (bank ids do not exist before clustering; the partitioner always
// scores at the global margin). Job counts never key anything.
// ---------------------------------------------------------------------------

TEST(EngineTest, CacheKeySensitivity) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  Engine engine(Tech::generic90());
  DesyncOptions opt;
  FlowOutcome base = engine.run(ff, clk, opt);

  // Uniformly larger per-bank margins: longer delay lines, new Verilog.
  DesyncOptions widened = opt;
  widened.margins.assign(base.stats.banks, 2.0);
  FlowOutcome wide = engine.run(ff, clk, widened);
  EXPECT_FALSE(wide.cached);
  EXPECT_NE(*wide.verilog, *base.verilog);
  {
    StageCounters sc = engine.counters();
    // The partition stage was *reused* (margins are not in its key)...
    EXPECT_EQ(sc.partition_runs, 1u);
    EXPECT_EQ(sc.partition_hits, 1u);
    // ... while adjacency onward re-ran under the new margin key.
    EXPECT_EQ(sc.adjacency_runs, 2u);
    EXPECT_EQ(sc.synth_runs, 2u);
  }

  // The job knobs are excluded from every key: changing all of them on
  // the widened coordinates is a pure result-cache hit.
  DesyncOptions jobs = widened;
  jobs.opt_jobs = 4;
  jobs.sim_jobs = 8;
  FlowOutcome hit = engine.run(ff, clk, jobs);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(*hit.verilog, *wide.verilog);

  // An all-zero vector means "global margin everywhere" — the same
  // hardware as the empty vector, but a distinct cache coordinate (the
  // key hashes the vector structurally): a re-run, byte-identical output.
  DesyncOptions zeros = opt;
  zeros.margins.assign(base.stats.banks, 0.0);
  FlowOutcome z = engine.run(ff, clk, zeros);
  EXPECT_FALSE(z.cached);
  EXPECT_EQ(*z.verilog, *base.verilog);
}

// ---------------------------------------------------------------------------
// ECO fast paths
// ---------------------------------------------------------------------------

TEST(EngineEco, KindEditTakesConeLimitedStaAndStaysIdentical) {
  NetId clk;
  Netlist base = pipeline3(&clk);
  DesyncOptions opt;
  Engine engine(Tech::generic90());
  engine.run(base, clk, opt);

  // Flip the lone inverter to a buffer: a pin-compatible single-delay edit.
  nl::CellId inv = find_kind(base, Kind::Inv);
  ASSERT_TRUE(inv.valid());
  Netlist edit = base;
  edit.set_kind(inv, Kind::Buf);

  StageCounters before = engine.counters();
  FlowOutcome eco = engine.run(edit, clk, opt);
  StageCounters after = engine.counters();
  EXPECT_FALSE(eco.cached);
  // The edit diffs as field-only against the lineage: adjacency re-times
  // only the cones that contain the edited cell...
  EXPECT_EQ(after.adjacency_eco, before.adjacency_eco + 1);
  EXPECT_EQ(after.adjacency_runs, before.adjacency_runs);
  EXPECT_GT(after.eco_banks_retimed, before.eco_banks_retimed);
  // ...and synthesis either field-patches (delays stayed in their
  // quantization buckets) or honestly re-runs (they did not) — never a
  // stale cache hit.
  EXPECT_EQ(after.synth_patched + after.synth_runs,
            before.synth_patched + before.synth_runs + 1);
  EXPECT_EQ(after.synth_hits, before.synth_hits);

  // Whatever path ran, the bytes match a cold engine's.
  Engine fresh(Tech::generic90());
  EXPECT_EQ(*eco.verilog, *fresh.run(edit, clk, opt).verilog);
}

TEST(EngineEco, InitFlipFieldPatchesSynthAndHitsMcr) {
  NetId clk;
  Netlist base = counter4(&clk);
  DesyncOptions opt;
  Engine engine(Tech::generic90());
  engine.run(base, clk, opt);

  // Flip one flip-flop's initial value: no delay moves at all.
  nl::CellId ff = find_kind(base, Kind::Dff);
  ASSERT_TRUE(ff.valid());
  Netlist edit = base;
  edit.set_init(ff, base.cell(ff).init == V::V0 ? V::V1 : V::V0);

  StageCounters before = engine.counters();
  FlowOutcome eco = engine.run(edit, clk, opt);
  StageCounters after = engine.counters();
  EXPECT_FALSE(eco.cached);
  EXPECT_EQ(after.adjacency_eco, before.adjacency_eco + 1);
  // The control graph is unchanged, so the synthesized controllers are
  // field-patched and the MCR artifact is a straight cache hit.
  EXPECT_EQ(after.synth_patched, before.synth_patched + 1);
  EXPECT_EQ(after.synth_runs, before.synth_runs);
  EXPECT_EQ(after.mcr_hits, before.mcr_hits + 1);

  Engine fresh(Tech::generic90());
  EXPECT_EQ(*eco.verilog, *fresh.run(edit, clk, opt).verilog);
}

TEST(EngineEco, StructuralEditFallsBackToFullStages) {
  NetId clk;
  Netlist base = pipeline3(&clk);
  DesyncOptions opt;
  Engine engine(Tech::generic90());
  engine.run(base, clk, opt);

  // Adding a cell changes the structure: no ECO path may fire.
  Netlist edit = base;
  {
    Builder b(edit);
    NetId q2 = edit.outputs()[0];
    nl::CellId drv = edit.net(q2).driver;
    ASSERT_TRUE(drv.valid());
    (void)b.inv(edit.cell(drv).ins[0], "extra.inv");
  }
  StageCounters before = engine.counters();
  FlowOutcome eco = engine.run(edit, clk, opt);
  StageCounters after = engine.counters();
  EXPECT_EQ(after.adjacency_eco, before.adjacency_eco);
  EXPECT_EQ(after.synth_patched, before.synth_patched);

  Engine fresh(Tech::generic90());
  EXPECT_EQ(*eco.verilog, *fresh.run(edit, clk, opt).verilog);
}

// ---------------------------------------------------------------------------
// LRU eviction
// ---------------------------------------------------------------------------

TEST(EngineStore, EvictionRecomputesByteIdenticalResults) {
  // A store far too small for the working set: artifacts are evicted,
  // resubmissions recompute, and the bytes never change.
  EngineOptions eopt;
  eopt.capacity = 3;
  Engine engine(Tech::generic90(), eopt);
  DesyncOptions opt;

  NetId clk;
  Netlist first = pipeline3(&clk);
  std::string first_bytes = *engine.run(first, clk, opt).verilog;

  for (int stages : {2, 3, 4, 5}) {
    NetId c;
    Netlist nl = shifter(stages, &c);
    engine.run(nl, c, opt);
  }
  EXPECT_GT(engine.store_stats().evictions, 0u);

  FlowOutcome again = engine.run(first, clk, opt);
  EXPECT_EQ(*again.verilog, first_bytes);
}

// ---------------------------------------------------------------------------
// On-disk tier
// ---------------------------------------------------------------------------

TEST(EngineDisk, SecondEngineIsServedFromDisk) {
  std::string dir = fresh_dir("roundtrip");
  NetId clk;
  Netlist ff = counter4(&clk);
  DesyncOptions opt;
  EngineOptions eopt;
  eopt.cache_dir = dir;

  std::string cold_bytes;
  {
    Engine writer(Tech::generic90(), eopt);
    FlowOutcome cold = writer.run(ff, clk, opt);
    EXPECT_FALSE(cold.cached);
    cold_bytes = *cold.verilog;
  }

  // A brand-new engine (empty memory tier) on the same directory: the
  // result artifact is read back, verified, and served as a cache hit.
  Engine reader(Tech::generic90(), eopt);
  FlowOutcome warm = reader.run(ff, clk, opt);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(*warm.verilog, cold_bytes);
  EXPECT_GE(reader.store_stats().disk_hits, 1u);
  EXPECT_EQ(reader.counters().synth_runs, 0u);  // nothing recomputed

  std::filesystem::remove_all(dir);
}

TEST(EngineDisk, CorruptEntriesAreRejectedAndRecomputed) {
  std::string dir = fresh_dir("corrupt");
  NetId clk;
  Netlist ff = pipeline3(&clk);
  DesyncOptions opt;
  EngineOptions eopt;
  eopt.cache_dir = dir;

  std::string cold_bytes;
  {
    Engine writer(Tech::generic90(), eopt);
    cold_bytes = *writer.run(ff, clk, opt).verilog;
  }

  // Vandalize every artifact file: flip bytes, truncate, or empty them.
  int mangled = 0;
  for (const auto& e : std::filesystem::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ofstream out(e.path(), std::ios::binary | std::ios::trunc);
    out << (mangled % 2 ? "" : "desyn-garbage not an artifact\n");
    ++mangled;
  }
  ASSERT_GT(mangled, 0);

  // The integrity header rejects every entry; the flow recomputes and the
  // bytes still match the original cold run.
  Engine reader(Tech::generic90(), eopt);
  FlowOutcome redo = reader.run(ff, clk, opt);
  EXPECT_FALSE(redo.cached);
  EXPECT_EQ(*redo.verilog, cold_bytes);
  EXPECT_GE(reader.store_stats().disk_corrupt, 1u);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The staged desynchronize() vs. the monolithic reference
// ---------------------------------------------------------------------------

TEST(EngineDesynchronize, MatchesReferenceAndSharesArtifacts) {
  NetId clk;
  Netlist ff = counter4(&clk);
  DesyncOptions opt;
  Engine engine(Tech::generic90());

  auto dr = engine.desynchronize(ff, clk, opt);
  DesyncResult ref = desynchronize_reference(ff, clk, Tech::generic90(), opt);
  EXPECT_EQ(nl::to_verilog(dr->netlist), nl::to_verilog(ref.netlist));

  // A run() after desynchronize() reuses every stage below the result.
  StageCounters before = engine.counters();
  engine.run(ff, clk, opt);
  StageCounters after = engine.counters();
  EXPECT_EQ(after.synth_runs, before.synth_runs);
  EXPECT_EQ(after.synth_hits, before.synth_hits + 1);
}

}  // namespace
}  // namespace desyn::flow
