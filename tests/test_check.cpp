#include "check/check.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "base/json.h"
#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "ctl/protocol.h"
#include "flow/engine.h"
#include "netlist/builder.h"

namespace desyn::check {
namespace {

using cell::Kind;
using cell::Tech;
using cell::V;
using ctl::Protocol;
using nl::Builder;
using nl::CellId;
using nl::Netlist;
using nl::NetId;

const Tech& tech() { return Tech::generic90(); }

flow::DesyncResult run_flow(const circuits::Circuit& c, Protocol p) {
  flow::DesyncOptions opt;
  opt.protocol = p;
  return flow::desynchronize(c.netlist, c.clock, tech(), opt);
}

LintReport lint_of(const flow::DesyncResult& r) { return lint(r, tech()); }

/// A small design with one RAM macro (same shape as test_partition's) so
/// the reader->writer ordering arcs exist.
circuits::Circuit ram_design() {
  Netlist nl("ramd");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId din = b.input("din");
  std::vector<NetId> wa(2);
  for (int i = 0; i < 2; ++i) wa[i] = nl.add_net(cat("adr.q", i));
  NetId carry = b.hi();
  for (int i = 0; i < 2; ++i) {
    NetId sum = b.xor_(wa[i], carry);
    carry = b.and_({wa[i], carry});
    nl.add_cell(Kind::Dff, cat("adr.r", i), {sum, clk}, {wa[i]}, V::V0);
  }
  std::vector<NetId> wd = {din, b.inv(din)};
  std::vector<NetId> ra = {b.inv(wa[0]), wa[1]};
  auto rd = b.ram(clk, b.hi(), wa, wd, ra, 2, "mem");
  NetId q = b.dff(b.xor_(rd[0], rd[1]), clk, V::V0, "out.r");
  b.output(q);
  return {std::move(nl), clk};
}

// --------------------------------------------------------------------------
// Mutation helpers: all mutations are pure netlist edits on a DesyncResult
// copy, the same editing API the flow itself uses.
// --------------------------------------------------------------------------

/// The transition C-element driving bank `b`'s round net.
CellId round_c(const flow::DesyncResult& r, int b) {
  return r.netlist.net(r.ctrl.rounds[static_cast<size_t>(b)]).driver;
}

/// Controller terminal nets (round + fall transition nets) — the cone walk
/// below must not look through another bank's transition output.
std::set<uint32_t> terminal_nets(const flow::DesyncResult& r) {
  std::set<uint32_t> t;
  for (NetId n : r.ctrl.rounds) {
    if (n.valid()) t.insert(n.value());
  }
  for (NetId n : r.ctrl.falls) {
    if (n.valid()) t.insert(n.value());
  }
  return t;
}

/// Does `target` appear in the driver cone of `start`, walking through any
/// cell but stopping at controller terminals other than the target?
bool cone_has(const Netlist& nl, NetId start, NetId target,
              const std::set<uint32_t>& stops) {
  std::vector<NetId> stack = {start};
  std::set<uint32_t> seen;
  while (!stack.empty()) {
    NetId n = stack.back();
    stack.pop_back();
    if (!seen.insert(n.value()).second) continue;
    if (n == target) return true;
    if (stops.count(n.value())) continue;
    CellId d = nl.net(n).driver;
    if (!d.valid()) continue;
    for (NetId in : nl.cell(d).ins) stack.push_back(in);
  }
  return false;
}

/// The input pin of `c` whose cone contains `target` (-1 if none/ambiguous
/// selection is fine: the first one).
int input_tracing_to(const Netlist& nl, CellId c, NetId target,
                     const std::set<uint32_t>& stops) {
  const nl::CellData& cd = nl.cell(c);
  for (size_t i = 0; i < cd.ins.size(); ++i) {
    if (cone_has(nl, cd.ins[i], target, stops)) return static_cast<int>(i);
  }
  return -1;
}

/// Drop the controller arc carried by input `pin` of `c`: rewire it to a
/// sibling input whose cone does NOT contain `avoid` (duplicated C-element
/// inputs are legal — the synthesizer itself emits C(a,a)).
void drop_input(Netlist& nl, CellId c, int pin, NetId avoid,
                const std::set<uint32_t>& stops) {
  const nl::CellData& cd = nl.cell(c);
  for (size_t j = 0; j < cd.ins.size(); ++j) {
    if (static_cast<int>(j) == pin) continue;
    if (cone_has(nl, cd.ins[j], avoid, stops)) continue;
    nl.rewire_input(c, static_cast<uint16_t>(pin), cd.ins[j]);
    return;
  }
  FAIL() << "no sibling input to rewire to";
}

/// Like drop_input, but descends toward the source when every sibling of
/// the traced pin also sees `target` (pred legs merge in join trees before
/// the transition C-element; the drop must happen where the leg is still
/// separate).
bool drop_leg(Netlist& nl, CellId c, NetId target,
              const std::set<uint32_t>& stops) {
  int pin = input_tracing_to(nl, c, target, stops);
  if (pin < 0) return false;
  const nl::CellData& cd = nl.cell(c);
  for (size_t j = 0; j < cd.ins.size(); ++j) {
    if (static_cast<int>(j) == pin) continue;
    if (cone_has(nl, cd.ins[j], target, stops)) continue;
    nl.rewire_input(c, static_cast<uint16_t>(pin), cd.ins[j]);
    return true;
  }
  CellId d = nl.net(cd.ins[static_cast<size_t>(pin)]).driver;
  if (!d.valid()) return false;
  return drop_leg(nl, d, target, stops);
}

/// First control-graph edge between two real (non-environment) banks for
/// which `want_even_from` matches; asserts one exists.
ctl::ControlGraph::Edge real_edge(const flow::DesyncResult& r,
                                  bool want_even_from) {
  for (const auto& e : r.cg.edges()) {
    if (e.from == r.env_snk || e.from == r.env_src) continue;
    if (e.to == r.env_snk || e.to == r.env_src) continue;
    if (r.cg.bank(e.from).even == want_even_from) return e;
  }
  ADD_FAILURE() << "no real edge with even(from)=" << want_even_from;
  return r.cg.edges().front();
}

// --------------------------------------------------------------------------
// Diagnostics framework
// --------------------------------------------------------------------------

TEST(CheckCodes, TablesAndFormatting) {
  EXPECT_EQ(format_code(kArcMismatch), "DSN204");
  EXPECT_EQ(format_code(kFloatingNet), "DSN101");
  EXPECT_STREQ(code_pass(kCombCycle), "structure");
  EXPECT_STREQ(code_pass(kNotLive), "control");
  EXPECT_STREQ(code_pass(kDelayLineShort), "timing");
  EXPECT_STREQ(code_pass(kRamClosureLost), "handshake");
}

TEST(CheckCodes, ReportAccounting) {
  LintReport rep;
  EXPECT_TRUE(rep.clean());
  rep.diags.push_back({kDelayLineLong, Severity::Warning, "m", "", ""});
  rep.diags.push_back({kNotLive, Severity::Error, "m", "", ""});
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.warnings(), 1u);
  EXPECT_TRUE(rep.has(kNotLive));
  EXPECT_FALSE(rep.has(kNotSafe));
}

// --------------------------------------------------------------------------
// Zero false positives: every suite circuit x all four protocols is clean.
// --------------------------------------------------------------------------

TEST(CheckClean, SuiteAllProtocols) {
  for (const circuits::Suite& s : circuits::scaling_suite()) {
    for (Protocol p : ctl::kAllProtocols) {
      flow::DesyncResult r = run_flow(s.circuit, p);
      LintReport rep = lint_of(r);
      EXPECT_TRUE(rep.clean())
          << render_text(rep, cat(s.name, "/", ctl::protocol_name(p)));
      EXPECT_TRUE(rep.structure_clean);
      EXPECT_TRUE(rep.control_extracted);
      EXPECT_GT(rep.arcs_checked, 0u);
      EXPECT_GT(rep.paths_checked, 0u);
      EXPECT_GT(rep.edges_checked, 0u);
    }
  }
}

TEST(CheckClean, RamDesignAllProtocols) {
  circuits::Circuit c = ram_design();
  for (Protocol p : ctl::kAllProtocols) {
    flow::DesyncResult r = run_flow(c, p);
    LintReport rep = lint_of(r);
    EXPECT_TRUE(rep.clean())
        << render_text(rep, cat("ramd/", ctl::protocol_name(p)));
  }
}

TEST(CheckClean, DlxAllProtocols) {
  circuits::Circuit c = circuits::crc32();
  for (Protocol p : ctl::kAllProtocols) {
    LintReport rep = lint_of(run_flow(c, p));
    EXPECT_TRUE(rep.clean())
        << render_text(rep, cat("crc32/", ctl::protocol_name(p)));
  }
}

// --------------------------------------------------------------------------
// Pass 1 (structure) mutations
// --------------------------------------------------------------------------

TEST(CheckStructure, FloatingNetIsDSN101) {
  flow::DesyncResult r = run_flow(circuits::pipeline(4, 8, 2), Protocol::Pulse);
  CellId latch = r.banks.banks.at(0).latches.at(0);
  NetId orphan = r.netlist.add_net("mut.float");
  r.netlist.rewire_input(latch, 0, orphan);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kFloatingNet)) << render_text(rep, "mut");
  EXPECT_FALSE(rep.clean());
}

TEST(CheckStructure, CombCycleIsDSN102AndGatesLaterPasses) {
  flow::DesyncResult r = run_flow(circuits::pipeline(4, 8, 2), Protocol::Pulse);
  NetId a = r.netlist.add_net("mut.cyc.a");
  NetId b = r.netlist.add_net("mut.cyc.b");
  r.netlist.add_cell(Kind::Inv, "mut.cyc.i0", {a}, {b});
  r.netlist.add_cell(Kind::Inv, "mut.cyc.i1", {b}, {a});
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kCombCycle)) << render_text(rep, "mut");
  EXPECT_FALSE(rep.structure_clean);
  // STA/extraction need an acyclic netlist; the linter must degrade, not
  // crash, and must not claim the control network was verified.
  EXPECT_FALSE(rep.control_extracted);
}

TEST(CheckStructure, DanglingEnableIsDSN103) {
  flow::DesyncResult r =
      run_flow(circuits::pipeline(4, 8, 2), Protocol::SemiDecoupled);
  CellId latch = r.banks.banks.at(0).latches.at(0);
  // Feed the latch from a *different* bank's enable: still a control net,
  // but not the one its bank's controller drives.
  r.netlist.rewire_input(latch, 1, r.ctrl.enables.at(2));
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kDanglingEnable)) << render_text(rep, "mut");
}

TEST(CheckStructure, UnresolvedResetIsDSN104) {
  flow::DesyncResult r = run_flow(circuits::pipeline(4, 8, 2), Protocol::Pulse);
  r.netlist.set_init(round_c(r, 0), V::VX);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kResetUnresolved)) << render_text(rep, "mut");
}

// --------------------------------------------------------------------------
// Pass 2 (control network) mutations
// --------------------------------------------------------------------------

TEST(CheckControl, DatapathIntoControllerIsDSN201) {
  flow::DesyncResult r = run_flow(circuits::pipeline(4, 8, 2), Protocol::Pulse);
  NetId latch_q = r.netlist.cell(r.banks.banks.at(0).latches.at(0)).outs[0];
  r.netlist.rewire_input(round_c(r, 2), 0, latch_q);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kExtractionFailed)) << render_text(rep, "mut");
  EXPECT_FALSE(rep.control_extracted);
}

TEST(CheckControl, BypassedMarkingInverterIsDSN202) {
  flow::DesyncResult r =
      run_flow(circuits::pipeline(4, 8, 2), Protocol::Lockstep);
  // The shared marking inverter of (b, +) for an even bank b: removing it
  // unmarks every arc sourced at b+, including the alternation b+ -> b-,
  // leaving the b+ <-> b- cycle token-free (a genuine deadlock).
  CellId inv;
  NetId round;
  bool found = false;
  for (CellId c : r.netlist.cells()) {
    const nl::CellData& cd = r.netlist.cell(c);
    if (cd.kind != Kind::Inv) continue;
    for (size_t b = 0; b < r.cg.num_banks(); ++b) {
      int bi = static_cast<int>(b);
      if (bi == r.env_snk || bi == r.env_src) continue;
      if (!r.cg.bank(bi).even) continue;
      if (cd.ins[0] == r.ctrl.rounds[b]) {
        inv = c;
        round = r.ctrl.rounds[b];
        found = true;
      }
    }
    if (found) break;
  }
  ASSERT_TRUE(found) << "no marking inverter on an even bank round";
  std::vector<nl::Pin> pins = r.netlist.net(r.netlist.cell(inv).outs[0]).fanout;
  for (const nl::Pin& p : pins) r.netlist.rewire_input(p.cell, p.index, round);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kNotLive)) << render_text(rep, "mut");
}

TEST(CheckControl, InjectedMarkingInverterIsDSN203) {
  flow::DesyncResult r =
      run_flow(circuits::pipeline(4, 8, 2), Protocol::SemiDecoupled);
  // Invert the b- -> a+ acknowledge leg: the arc's recovered marking flips
  // to marked, giving the a+ -> b- -> a+ handshake cycle two tokens.
  ctl::ControlGraph::Edge e = real_edge(r, /*want_even_from=*/true);
  std::set<uint32_t> stops = terminal_nets(r);
  CellId aplus = round_c(r, e.from);
  NetId bfall = r.ctrl.falls.at(static_cast<size_t>(e.to));
  int pin = input_tracing_to(r.netlist, aplus, bfall, stops);
  ASSERT_GE(pin, 0);
  NetId inverted = r.netlist.add_net("mut.mark");
  r.netlist.add_cell(Kind::Inv, "mut.mark.i",
                     {r.netlist.cell(aplus).ins[static_cast<size_t>(pin)]},
                     {inverted});
  r.netlist.rewire_input(aplus, static_cast<uint16_t>(pin), inverted);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kNotSafe)) << render_text(rep, "mut");
}

TEST(CheckControl, DroppedPredArcIsDSN204) {
  flow::DesyncResult r =
      run_flow(circuits::pipeline(4, 8, 2), Protocol::SemiDecoupled);
  // Drop the p- -> a+ matched-delay (pred) arc at a+'s C-element.
  ctl::ControlGraph::Edge e = real_edge(r, /*want_even_from=*/false);
  std::set<uint32_t> stops = terminal_nets(r);
  CellId to_c = round_c(r, e.to);
  NetId from_fall = r.ctrl.falls.at(static_cast<size_t>(e.from));
  int pin = input_tracing_to(r.netlist, to_c, from_fall, stops);
  ASSERT_GE(pin, 0);
  drop_input(r.netlist, to_c, pin, from_fall, stops);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kArcMismatch)) << render_text(rep, "mut");
}

TEST(CheckControl, SwappedCElementInputIsDSN204) {
  flow::DesyncResult r = run_flow(circuits::pipeline(4, 8, 2), Protocol::Pulse);
  // Cross-wire bank 0's C-element input into bank 5's controller: the
  // extracted arc set gains an edge the model does not have.
  CellId victim = round_c(r, 5);
  NetId foreign = r.netlist.cell(round_c(r, 0)).ins[0];
  r.netlist.rewire_input(victim, 0, foreign);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kArcMismatch)) << render_text(rep, "mut");
}

TEST(CheckControl, Pr2LockstepArcSetRegressionIsDSN205) {
  // PR 2's real Lockstep bug: the synthesized arc set lost the a- -> b+
  // interlock, so a successor bank could open while its predecessor was
  // still transparent. Reproduce the defect class by dropping that leg at
  // b+'s C-element and assert the *contract* check fires — the non-overlap
  // property is verified on the extracted graph alone, so it catches this
  // class even when model and hardware share the same wrong arc list, and
  // without simulating a single event.
  flow::DesyncResult r =
      run_flow(circuits::pipeline(4, 8, 2), Protocol::Lockstep);
  ctl::ControlGraph::Edge e = real_edge(r, /*want_even_from=*/true);
  std::set<uint32_t> stops = terminal_nets(r);
  CellId bplus = round_c(r, e.to);
  NetId afall = r.ctrl.falls.at(static_cast<size_t>(e.from));
  int pin = input_tracing_to(r.netlist, bplus, afall, stops);
  ASSERT_GE(pin, 0);
  drop_input(r.netlist, bplus, pin, afall, stops);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kProtocolContract)) << render_text(rep, "mut");
  EXPECT_TRUE(rep.has(kArcMismatch));
}

// --------------------------------------------------------------------------
// Pass 3 (matched-delay coverage) mutations
// --------------------------------------------------------------------------

/// A (delay, delay) chain pair: `second` is fed by `first`.
bool find_delay_pair(const Netlist& nl, CellId* second, CellId* first) {
  for (CellId c : nl.cells()) {
    const nl::CellData& cd = nl.cell(c);
    if (cd.kind != Kind::Delay) continue;
    CellId up = nl.net(cd.ins[0]).driver;
    if (up.valid() && nl.cell(up).kind == Kind::Delay) {
      *second = c;
      *first = up;
      return true;
    }
  }
  return false;
}

TEST(CheckTiming, ShavedDelayLineIsDSN301) {
  CellId second, first;
  std::optional<flow::DesyncResult> r;
  for (const circuits::Suite& s : circuits::scaling_suite()) {
    r.emplace(run_flow(s.circuit, Protocol::Pulse));
    if (find_delay_pair(r->netlist, &second, &first)) break;
    r.reset();
  }
  ASSERT_TRUE(r.has_value()) << "no 2+ cell matched-delay line in the suite";
  // Splice one DELAY cell out of the chain: the line is now one unit
  // shorter than the recomputed launch->capture delay requires.
  r->netlist.rewire_input(second, 0, r->netlist.cell(first).ins[0]);
  LintReport rep = lint_of(*r);
  EXPECT_TRUE(rep.has(kDelayLineShort)) << render_text(rep, "mut");
  EXPECT_GT(rep.errors(), 0u);
}

TEST(CheckTiming, PaddedDelayLineIsDSN303WarningOnly) {
  CellId second, first;
  std::optional<flow::DesyncResult> r;
  for (const circuits::Suite& s : circuits::scaling_suite()) {
    r.emplace(run_flow(s.circuit, Protocol::Pulse));
    if (find_delay_pair(r->netlist, &second, &first)) break;
    r.reset();
  }
  ASSERT_TRUE(r.has_value());
  NetId mid = r->netlist.add_net("mut.pad");
  r->netlist.add_cell(Kind::Delay, "mut.pad.d",
                      {r->netlist.cell(second).ins[0]}, {mid});
  r->netlist.rewire_input(second, 0, mid);
  LintReport rep = lint_of(*r);
  EXPECT_TRUE(rep.has(kDelayLineLong)) << render_text(rep, "mut");
  // Over-provisioning wastes area but cannot corrupt data: warning only.
  EXPECT_EQ(rep.errors(), 0u);
  EXPECT_GT(rep.warnings(), 0u);
}

TEST(CheckTiming, UncoveredCrossBankPathIsDSN302) {
  flow::DesyncResult r =
      run_flow(circuits::pipeline(4, 8, 2), Protocol::SemiDecoupled);
  // Wire a latch D pin to the Q of a non-adjacent bank: a launch->capture
  // path no control-graph edge (hence no matched delay) covers.
  bool done = false;
  for (size_t o = 0; o < r.banks.banks.size() && !done; ++o) {
    if (r.cg.bank(static_cast<int>(o)).even) continue;
    for (size_t v = 0; v < r.banks.banks.size() && !done; ++v) {
      if (!r.cg.bank(static_cast<int>(v)).even) continue;
      bool adjacent = false;
      for (const auto& e : r.cg.edges()) {
        if (e.from == static_cast<int>(o) && e.to == static_cast<int>(v)) {
          adjacent = true;
        }
      }
      if (adjacent) continue;
      if (r.banks.banks[o].latches.empty() || r.banks.banks[v].latches.empty())
        continue;
      NetId q = r.netlist.cell(r.banks.banks[o].latches[0]).outs[0];
      r.netlist.rewire_input(r.banks.banks[v].latches[0], 0, q);
      done = true;
    }
  }
  ASSERT_TRUE(done) << "no non-adjacent bank pair";
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kUncoveredPath)) << render_text(rep, "mut");
}

// --------------------------------------------------------------------------
// Pass 4 (handshake completeness) mutations
// --------------------------------------------------------------------------

TEST(CheckHandshake, OrphanedAckIsDSN401) {
  flow::DesyncResult r = run_flow(circuits::pipeline(4, 8, 2), Protocol::Pulse);
  // Drop the b+ -> a+ acknowledge leg at a's round C-element: bank a's
  // request to b is no longer answered.
  ctl::ControlGraph::Edge e = real_edge(r, /*want_even_from=*/true);
  std::set<uint32_t> stops = terminal_nets(r);
  CellId a_c = round_c(r, e.from);
  NetId b_round = r.ctrl.rounds.at(static_cast<size_t>(e.to));
  int pin = input_tracing_to(r.netlist, a_c, b_round, stops);
  ASSERT_GE(pin, 0);
  drop_input(r.netlist, a_c, pin, b_round, stops);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kMissingAck)) << render_text(rep, "mut");
}

TEST(CheckHandshake, LostRamOrderingIsDSN402) {
  flow::DesyncResult r = run_flow(ram_design(), Protocol::Pulse);
  // The writer bank (the odd bank holding the RAM macro) must keep an
  // incoming arc from every reader bank; drop its pred leg.
  int w = -1;
  for (size_t i = 0; i < r.banks.banks.size(); ++i) {
    if (!r.banks.banks[i].rams.empty()) w = static_cast<int>(i);
  }
  ASSERT_GE(w, 0);
  ASSERT_FALSE(r.cg.bank(w).even);
  int reader = -1;
  for (const auto& e : r.cg.edges()) {
    if (e.to == w && e.from != w && e.from != r.env_snk &&
        e.from != r.env_src && r.cg.bank(e.from).even) {
      reader = e.from;
    }
  }
  ASSERT_GE(reader, 0) << "no reader edge into the writer bank";
  std::set<uint32_t> stops = terminal_nets(r);
  NetId reader_round = r.ctrl.rounds.at(static_cast<size_t>(reader));
  // Sever every leg from the reader's round into the writer's controller
  // (the ordering pred leg and the returning ack leg share one transition
  // quad): the writer can then fire with no regard for the reader at all.
  while (drop_leg(r.netlist, round_c(r, w), reader_round, stops)) {
  }
  ASSERT_LT(input_tracing_to(r.netlist, round_c(r, w), reader_round, stops),
            0);
  LintReport rep = lint_of(r);
  EXPECT_TRUE(rep.has(kRamClosureLost)) << render_text(rep, "mut");
}

// --------------------------------------------------------------------------
// Renderers
// --------------------------------------------------------------------------

TEST(CheckRender, TextNamesCodesAndAnchors) {
  LintReport rep;
  rep.diags.push_back({kDelayLineShort, Severity::Error, "line too short",
                       "ctl.s1.d0_1", "ctl.s1+"});
  std::string text = render_text(rep, "pipe");
  EXPECT_NE(text.find("DSN301"), std::string::npos);
  EXPECT_NE(text.find("ctl.s1.d0_1"), std::string::npos);
  EXPECT_NE(text.find("timing"), std::string::npos);
}

TEST(CheckRender, JsonRoundTrips) {
  flow::DesyncResult r = run_flow(circuits::pipeline(4, 8, 2), Protocol::Pulse);
  r.netlist.set_init(round_c(r, 0), V::VX);
  LintReport rep = lint_of(r);
  ASSERT_FALSE(rep.clean());
  json::Value v =
      json::parse(render_json(rep, "pipe4x8", Protocol::Pulse, 1.1));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("circuit"), "pipe4x8");
  EXPECT_EQ(v.get_string("protocol"), "pulse");
  EXPECT_FALSE(v.get_bool("clean", true));
  EXPECT_NEAR(v.get_number("margin", 0), 1.1, 1e-9);
  EXPECT_EQ(static_cast<size_t>(v.get_number("errors", -1)), rep.errors());
  const json::Value* diags = v.get("diags");
  ASSERT_NE(diags, nullptr);
  ASSERT_EQ(diags->array.size(), rep.diags.size());
  const json::Value& d0 = diags->array[0];
  EXPECT_EQ(d0.get_string("code"), format_code(rep.diags[0].code));
  EXPECT_EQ(d0.get_string("pass"), code_pass(rep.diags[0].code));
  EXPECT_FALSE(d0.get_string("message").empty());
  const json::Value* checked = v.get("checked");
  ASSERT_NE(checked, nullptr);
  EXPECT_EQ(static_cast<size_t>(checked->get_number("edges", -1)),
            rep.edges_checked);
}

// --------------------------------------------------------------------------
// Engine stage: content-addressed, cached resubmission skips the analysis.
// --------------------------------------------------------------------------

TEST(CheckEngine, LintIsACachedStage) {
  flow::Engine eng(tech());
  circuits::Circuit c = circuits::pipeline(3, 4, 2);
  flow::DesyncOptions opt;
  opt.protocol = Protocol::Lockstep;
  auto r1 = eng.lint(c.netlist, c.clock, opt);
  ASSERT_NE(r1, nullptr);
  EXPECT_TRUE(r1->clean());
  flow::StageCounters c1 = eng.counters();
  EXPECT_EQ(c1.lint_runs, 1u);
  EXPECT_EQ(c1.lint_hits, 0u);
  auto r2 = eng.lint(c.netlist, c.clock, opt);
  flow::StageCounters c2 = eng.counters();
  EXPECT_EQ(c2.lint_runs, 1u);
  EXPECT_EQ(c2.lint_hits, 1u);
  EXPECT_EQ(r1.get(), r2.get());  // the cached artifact is shared
  // A different protocol is a different key — and a fresh report.
  opt.protocol = Protocol::Pulse;
  auto r3 = eng.lint(c.netlist, c.clock, opt);
  EXPECT_TRUE(r3->clean());
  EXPECT_EQ(eng.counters().lint_runs, 2u);
}

}  // namespace
}  // namespace desyn::check
