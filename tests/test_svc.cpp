// The persistent desyn server (svc/server.h): the desyn-svc-v1 protocol,
// typed error responses, socket round trips, and concurrent clients.
#include "svc/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "base/json.h"
#include "netlist/builder.h"
#include "netlist/writer.h"
#include "svc/client.h"

namespace desyn::svc {
namespace {

using cell::Kind;
using cell::Tech;
using cell::V;
using nl::Builder;
using nl::Netlist;
using nl::NetId;

Netlist pipeline3() {
  Netlist nl("pipe3");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d0 = b.input("din0");
  NetId d1 = b.input("din1");
  NetId q0a = b.dff(d0, clk, V::V0, "s0.a");
  NetId q0b = b.dff(d1, clk, V::V0, "s0.b");
  NetId q1 = b.dff(b.xor_(q0a, q0b), clk, V::V0, "s1.a");
  NetId q2 = b.dff(b.inv(q1), clk, V::V0, "s2.a");
  b.output(q2);
  return nl;
}

Netlist counter4() {
  Netlist nl("counter4");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId en = b.input("en");
  std::vector<NetId> qnets(4);
  for (int i = 0; i < 4; ++i) qnets[i] = nl.add_net(cat("cnt.q", i));
  NetId carry = en;
  for (int i = 0; i < 4; ++i) {
    NetId sum = b.xor_(qnets[i], carry);
    carry = b.and_({qnets[i], carry});
    nl.add_cell(Kind::Dff, cat("cnt.r", i), {sum, clk}, {qnets[i]}, V::V0);
  }
  b.output(qnets[3]);
  return nl;
}

/// Two flip-flops on different clocks: the flow rejects this.
Netlist multi_clock() {
  Netlist nl("mc");
  Builder b(nl);
  NetId c1 = b.input("clk_a");
  NetId c2 = b.input("clk_b");
  NetId d = b.input("d");
  NetId q1 = b.dff(d, c1, V::V0, "r1");
  NetId q2 = b.dff(q1, c2, V::V0, "r2");
  b.output(q2);
  return nl;
}

bool has_error_kind(const std::string& response, const char* kind) {
  return response.find(cat("\"error\": {\"kind\": \"", kind, "\"")) !=
         std::string::npos;
}

/// A short socket path (AF_UNIX paths are ~100 bytes) unique per test.
std::string fresh_socket(const char* tag) {
  std::string p = cat("/tmp/desyn_svc_", tag, "_", ::getpid(), ".sock");
  ::unlink(p.c_str());
  return p;
}

ServerOptions options(const std::string& socket_path, int threads = 2) {
  ServerOptions o;
  o.socket_path = socket_path;
  o.threads = threads;
  return o;
}

// ---------------------------------------------------------------------------
// handle_request: the protocol without a socket
// ---------------------------------------------------------------------------

TEST(SvcProtocol, SuccessResponseAndResultCache) {
  Server server(Tech::generic90(), options(fresh_socket("proto")));
  std::string req =
      make_request(nl::to_verilog(pipeline3()), "clk", "prefix", 1.1, "pulse");

  std::string cold = server.handle_request(req);
  EXPECT_NE(cold.find("\"schema\": \"desyn-svc-v1\""), std::string::npos);
  EXPECT_NE(cold.find("\"cached\": false"), std::string::npos);
  EXPECT_NE(cold.find("\"predicted_period_ps\""), std::string::npos);

  std::string warm = server.handle_request(req);
  EXPECT_NE(warm.find("\"cached\": true"), std::string::npos);
  // The result object is byte-identical across cold and cached service.
  EXPECT_EQ(extract_result(cold), extract_result(warm));
}

TEST(SvcProtocol, LintRequestEmbedsReport) {
  Server server(Tech::generic90(), options(fresh_socket("lint")));
  std::string req =
      make_request(nl::to_verilog(pipeline3()), "clk", "prefix", 1.1, "pulse");
  ASSERT_EQ(req.back(), '}');
  std::string lint_req = req.substr(0, req.size() - 1) + ", \"lint\": true}";

  std::string resp = server.handle_request(lint_req);
  json::Value v = json::parse(resp);
  const json::Value* result = v.get("result");
  ASSERT_NE(result, nullptr);
  const json::Value* lint = result->get("lint");
  ASSERT_NE(lint, nullptr) << resp.substr(0, 200);
  EXPECT_TRUE(lint->get_bool("clean", false));
  EXPECT_EQ(lint->get_number("errors", -1), 0);
  EXPECT_EQ(lint->get_string("protocol"), "pulse");

  // Without the field the result object is unchanged (byte-compat).
  std::string plain = server.handle_request(req);
  EXPECT_EQ(plain.find("\"lint\""), std::string::npos);
}

TEST(SvcProtocol, MalformedJsonIsTypedParseError) {
  Server server(Tech::generic90(), options(fresh_socket("parse")));
  for (const char* line : {"", "not json", "{\"verilog\": ", "[1,2,", "}"}) {
    std::string resp = server.handle_request(line);
    EXPECT_TRUE(has_error_kind(resp, "parse")) << line << " -> " << resp;
  }
}

TEST(SvcProtocol, InvalidFieldsAreTypedRequestErrors) {
  Server server(Tech::generic90(), options(fresh_socket("fields")));
  std::string v = nl::to_verilog(pipeline3());
  struct Bad {
    const char* what;
    std::string line;
  };
  std::vector<Bad> cases = {
      {"not an object", "42"},
      {"missing verilog", "{\"clock\": \"clk\"}"},
      {"unreadable circuit",
       make_request("module \\m ( broken", "clk", "prefix", 1.1, "pulse")},
      {"unknown clock", make_request(v, "no_such_net", "prefix", 1.1, "pulse")},
      {"bad strategy", make_request(v, "clk", "bogus:9", 1.1, "pulse")},
      {"bad protocol", make_request(v, "clk", "prefix", 1.1, "morse")},
      {"margin out of range", make_request(v, "clk", "prefix", -2.0, "pulse")},
  };
  for (const Bad& c : cases) {
    std::string resp = server.handle_request(c.line);
    EXPECT_TRUE(has_error_kind(resp, "request")) << c.what << " -> " << resp;
  }
}

TEST(SvcProtocol, FlowRejectionIsTypedFlowError) {
  Server server(Tech::generic90(), options(fresh_socket("flowerr")));
  std::string req = make_request(nl::to_verilog(multi_clock()), "clk_a",
                                 "prefix", 1.1, "pulse");
  std::string resp = server.handle_request(req);
  EXPECT_TRUE(has_error_kind(resp, "flow")) << resp;
  EXPECT_NE(resp.find("clk_b"), std::string::npos) << resp;
}

// ---------------------------------------------------------------------------
// Socket round trips
// ---------------------------------------------------------------------------

TEST(SvcServer, StartServeStopRoundTrip) {
  std::string path = fresh_socket("basic");
  Server server(Tech::generic90(), options(path));
  EXPECT_FALSE(server.running());
  server.start();
  EXPECT_TRUE(server.running());

  std::string req =
      make_request(nl::to_verilog(counter4()), "clk", "prefix", 1.1, "pulse");
  std::string oracle = server.handle_request(req);  // cold, in-process
  {
    Client client(path);
    std::string resp = client.roundtrip(req);
    // The socket serves the exact bytes the handler produces (modulo the
    // cached flag, which flipped after the oracle's cold run).
    EXPECT_NE(resp.find("\"cached\": true"), std::string::npos);
    EXPECT_EQ(extract_result(resp), extract_result(oracle));
  }
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(std::filesystem::exists(path));  // socket file unlinked
  server.stop();                                // idempotent
}

TEST(SvcServer, ConnectionSurvivesGarbageThenServes) {
  std::string path = fresh_socket("garbage");
  Server server(Tech::generic90(), options(path));
  server.start();
  Client client(path);
  EXPECT_TRUE(has_error_kind(client.roundtrip("!! not json !!"), "parse"));
  // Same connection, same server: a valid request still succeeds.
  std::string resp = client.roundtrip(
      make_request(nl::to_verilog(pipeline3()), "clk", "prefix", 1.1, "pulse"));
  EXPECT_NE(resp.find("\"result\""), std::string::npos) << resp;
  server.stop();
}

TEST(SvcServer, ConcurrentClientsGetByteIdenticalResults) {
  std::string path = fresh_socket("stress");
  Server server(Tech::generic90(), options(path, 4));
  server.start();

  const std::string reqs[2] = {
      make_request(nl::to_verilog(pipeline3()), "clk", "prefix", 1.1, "pulse"),
      make_request(nl::to_verilog(counter4()), "clk", "perff", 1.2,
                   "fully-decoupled"),
  };
  constexpr int kThreads = 8;
  constexpr int kReps = 6;
  std::vector<std::string> results[2];
  std::mutex mu;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client client(path);
        for (int r = 0; r < kReps; ++r) {
          int which = (t + r) % 2;
          std::string body = extract_result(client.roundtrip(reqs[which]));
          std::lock_guard<std::mutex> lock(mu);
          results[which].push_back(std::move(body));
        }
      } catch (const Error&) {
        ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  server.stop();

  EXPECT_EQ(failures.load(), 0);
  for (int which = 0; which < 2; ++which) {
    ASSERT_EQ(results[which].size(), kThreads * kReps / 2u);
    for (const std::string& r : results[which]) {
      EXPECT_EQ(r, results[which][0]);
    }
  }
  // The engine served most submissions from its result cache. Racing
  // misses are benign double computation by the engine contract, so in
  // the worst case every thread's first touch of each distinct request
  // computes cold (visible under sanitizer slowdowns).
  EXPECT_GE(server.engine().counters().result_hits,
            kThreads * kReps - 2u * kThreads);
}

}  // namespace
}  // namespace desyn::svc
