#include "circuits/circuits.h"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/query.h"
#include "netlist/writer.h"
#include "sim/sim.h"
#include "verif/flow_equivalence.h"

namespace desyn::circuits {
namespace {

using cell::Tech;
using cell::V;

TEST(Circuits, PipelineStructure) {
  Circuit c = pipeline(4, 8, 2);
  c.netlist.check();
  auto s = nl::stats(c.netlist, Tech::generic90());
  EXPECT_EQ(s.flipflops, 4u * 8u);
  EXPECT_GT(s.count(cell::Kind::Xor), 0u);
}

TEST(Circuits, LfsrCyclesThroughStates) {
  Circuit c = lfsr(8);
  sim::Simulator sim(c.netlist, Tech::generic90());
  sim.add_clock(c.clock, 2000, 1000);
  std::vector<uint64_t> states;
  for (int k = 0; k < 20; ++k) {
    sim.run_until(2000 * (k + 1));
    states.push_back(sim::read_word(sim, c.netlist.outputs()));
  }
  // Nonzero start, state changes, no immediate repetition.
  EXPECT_NE(states[0], states[1]);
  EXPECT_NE(states[1], states[2]);
}

TEST(Circuits, CounterBankCounts) {
  Circuit c = counter_bank(2, 4);
  sim::Simulator sim(c.netlist, Tech::generic90());
  sim.set_input(c.netlist.find_net("en"), V::V1, 0);
  sim.add_clock(c.clock, 2000, 1000);
  // Counter 0 starts at 0: bit 3 (the PO) rises after 8 increments.
  sim.run_until(2000 * 9);
  EXPECT_EQ(sim.value(c.netlist.outputs()[0]), V::V1);
}

TEST(Circuits, FirRespondsToImpulse) {
  Circuit c = fir_filter(4, 8);
  sim::Simulator sim(c.netlist, Tech::generic90());
  auto x = std::vector<nl::NetId>();
  for (int i = 0; i < 8; ++i) x.push_back(c.netlist.find_net(cat("x", i)));
  sim::poke_word(sim, x, 1, 0);  // impulse then zero
  sim.add_clock(c.clock, 3000, 1500);
  sim.run_until(2000);
  sim::poke_word(sim, x, 0, 2000);
  // After taps+2 cycles the impulse has traversed: output returns to 0.
  sim.run_until(3000 * 10);
  EXPECT_EQ(sim::read_word(sim, c.netlist.outputs()), 0u);
}

class SuiteFlowEq : public ::testing::TestWithParam<int> {};

TEST_P(SuiteFlowEq, SmallSuiteCircuitsAreFlowEquivalent) {
  // Only the small suite entries here (the scaling bench covers the rest).
  Circuit c = GetParam() == 0   ? pipeline(4, 8, 2)
              : GetParam() == 1 ? lfsr(16)
              : GetParam() == 2 ? counter_bank(4, 8)
                                : fir_filter(8, 12);
  verif::FlowEqOptions opt;
  opt.rounds = 30;
  auto res = verif::check_flow_equivalence(c.netlist, c.clock,
                                           verif::random_stimulus(11),
                                           Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << c.netlist.name() << ": " << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SuiteFlowEq, ::testing::Values(0, 1, 2, 3));

TEST(Circuits, ScalingSuiteBuilds) {
  auto suite = scaling_suite();
  EXPECT_GE(suite.size(), 11u);  // incl. the generated rpipe/mesh shapes
  for (auto& s : suite) {
    s.circuit.netlist.check();
    EXPECT_GT(nl::stats(s.circuit.netlist, Tech::generic90()).flipflops, 0u);
  }
}

TEST(Circuits, RandomPipelineIsDeterministicPerSeed) {
  Circuit a = random_pipeline(7, 8, 4);
  Circuit b = random_pipeline(7, 8, 4);
  a.netlist.check();
  EXPECT_EQ(nl::stats(a.netlist, Tech::generic90()).flipflops, 8u * 4u);
  std::ostringstream va, vb;
  nl::write_verilog(a.netlist, va);
  nl::write_verilog(b.netlist, vb);
  EXPECT_EQ(va.str(), vb.str());  // same seed, byte-identical structure
}

TEST(Circuits, RandomPipelineScalesToThousandsOfCells) {
  Circuit c = random_pipeline(11, 128, 8);
  c.netlist.check();
  EXPECT_EQ(nl::stats(c.netlist, Tech::generic90()).flipflops, 128u * 8u);
  EXPECT_GT(c.netlist.num_live_cells(), 2000u);
}

TEST(Circuits, RandomPipelineFlowEquivalent) {
  Circuit c = random_pipeline(3, 6, 4);
  verif::FlowEqOptions opt;
  opt.rounds = 25;
  auto res = verif::check_flow_equivalence(c.netlist, c.clock,
                                           verif::random_stimulus(23),
                                           Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << c.netlist.name() << ": " << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
}

TEST(Circuits, RegisterMeshStructure) {
  Circuit c = register_mesh(3, 4, 2);
  c.netlist.check();
  EXPECT_EQ(nl::stats(c.netlist, Tech::generic90()).flipflops, 3u * 4u * 2u);
}

TEST(Circuits, RegisterMeshFlowEquivalent) {
  Circuit c = register_mesh(3, 3, 2);
  verif::FlowEqOptions opt;
  opt.rounds = 25;
  auto res = verif::check_flow_equivalence(c.netlist, c.clock,
                                           verif::random_stimulus(29),
                                           Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << c.netlist.name() << ": " << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
}

}  // namespace
}  // namespace desyn::circuits

namespace desyn::circuits {
namespace {

TEST(Circuits, Crc32MatchesSoftwareReference) {
  Circuit c = crc32();
  sim::Simulator sim(c.netlist, cell::Tech::generic90());
  nl::NetId din = c.netlist.find_net("din");
  // Shift in a known bit string, MSB-first software reference.
  uint32_t ref = 0xffffffffu;
  Rng rng(77);
  Ps t = 0;
  sim.set_input(din, V::V0, 0);
  sim.set_input(c.clock, V::V0, 0);
  for (int k = 0; k < 48; ++k) {
    int bit = rng.flip() ? 1 : 0;
    sim.set_input(din, bit ? V::V1 : V::V0, t + 200);
    sim.set_input(c.clock, V::V1, t + 1000);
    sim.set_input(c.clock, V::V0, t + 1600);
    t += 2000;
    sim.run_until(t);
    uint32_t fb = ((ref >> 31) ^ static_cast<uint32_t>(bit)) & 1u;
    ref = (ref << 1) ^ (fb ? 0x04C11DB7u : 0u);
  }
  bool has_x = false;
  uint64_t hw = sim::read_word(sim, c.netlist.outputs(), &has_x);
  EXPECT_FALSE(has_x);
  EXPECT_EQ(hw, ref);
}

TEST(Circuits, Crc32FlowEquivalent) {
  Circuit c = crc32();
  verif::FlowEqOptions opt;
  opt.rounds = 30;
  auto res = verif::check_flow_equivalence(c.netlist, c.clock,
                                           verif::random_stimulus(31),
                                           cell::Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << res.mismatch;
}

}  // namespace
}  // namespace desyn::circuits
