// Byte-identity harness for the sharded event simulator (sim/sim.h).
//
// The parallel engine's contract is not "statistically equivalent" but
// *byte-identical*: for any domain map and any job count, every observable
// — the VCD stream, final net values, RAM contents, event counts, toggle
// (power) accumulators, the recorded setup violations and the
// flow-equivalence verdict — must equal the serial oracle's, bit for bit.
// These tests pin that contract over the scaling suite x all four
// handshake protocols x jobs {1,2,4,8}, plus targeted regressions for the
// places a parallel engine classically goes wrong: FIFO tie order across
// shard boundaries, run_until chunking, replay, and captures coincident
// with a cross-domain boundary change (an off-by-one in the
// synchronization would reorder the capture against the data commit).
#include <sstream>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "netlist/builder.h"
#include "sim/domains.h"
#include "sim/sim.h"
#include "sim/vcd.h"
#include "verif/flow_equivalence.h"
#include "verif/testbench.h"

namespace desyn::sim {
namespace {

using cell::Kind;
using cell::Tech;
using cell::V;
using nl::Builder;
using nl::CellId;
using nl::Netlist;
using nl::NetId;

// ---------------------------------------------------------------- harness

struct Poke {
  NetId net;
  V v;
  Ps at;
};

/// Deterministic pseudo-random stimulus: `per_input` pokes per non-clock
/// primary input, scattered over [0, horizon). Same seed -> same pokes.
std::vector<Poke> random_pokes(const Netlist& nl, NetId skip, uint64_t seed,
                               Ps horizon, int per_input) {
  uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  auto next = [&s]() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  };
  std::vector<Poke> pokes;
  for (NetId in : nl.inputs()) {
    if (in == skip) continue;
    for (int k = 0; k < per_input; ++k) {
      const Ps at = static_cast<Ps>(next() % static_cast<uint64_t>(horizon));
      pokes.push_back({in, (next() & 1) ? V::V1 : V::V0, at});
    }
  }
  // set_input requires at >= now; issue every poke up-front, sorted so the
  // schedule itself is identical across runs (vector order is already
  // deterministic, the sort just lets callers run in chunks).
  std::stable_sort(pokes.begin(), pokes.end(),
                   [](const Poke& a, const Poke& b) { return a.at < b.at; });
  return pokes;
}

/// Every observable of one simulation run, in comparable form.
struct Fingerprint {
  std::string vcd;
  std::string finals;            // one char per net
  std::vector<uint64_t> toggles;  // per net (the power accumulators)
  uint64_t events = 0;
  uint64_t violation_count = 0;
  std::vector<std::tuple<Ps, uint32_t, uint32_t, Ps>> violations;
  std::vector<std::pair<std::string, uint64_t>> ram_words;
  uint64_t parallel_phases = 0;  // diagnostic, NOT part of identity
};

void expect_identical(const Fingerprint& a, const Fingerprint& b) {
  EXPECT_EQ(a.vcd, b.vcd);
  EXPECT_EQ(a.finals, b.finals);
  EXPECT_EQ(a.toggles, b.toggles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.ram_words, b.ram_words);
}

/// Run `nl` under `map` with `jobs` workers and collect every observable.
/// `chunk` > 0 splits run_until into chunk-sized steps (identity must hold
/// across run boundaries too). `clock` (if valid) free-runs from t=0.
Fingerprint run_sharded(const Netlist& nl, const Tech& tech, DomainMap map,
                        int jobs, const std::vector<Poke>& pokes, Ps horizon,
                        Ps chunk = 0, NetId clock = {}, Ps period = 0) {
  Simulator sim(nl, tech, SimOptions{jobs, std::move(map)});

  // VCD over a deterministic strided net subset (bounded stream size).
  std::vector<NetId> vcd_nets;
  const size_t stride = std::max<size_t>(1, nl.num_nets() / 256);
  for (size_t i = 0; i < nl.num_nets(); i += stride) {
    vcd_nets.push_back(NetId(static_cast<uint32_t>(i)));
  }
  std::ostringstream vcd;
  VcdWriter writer(sim, vcd, vcd_nets);

  if (clock.valid()) sim.add_clock(clock, period, period / 2);
  for (const Poke& p : pokes) sim.set_input(p.net, p.v, p.at);
  if (chunk > 0) {
    for (Ps t = chunk; t < horizon; t += chunk) sim.run_until(t);
  }
  sim.run_until(horizon);
  writer.finish();

  Fingerprint fp;
  fp.vcd = vcd.str();
  fp.finals.reserve(nl.num_nets());
  for (size_t i = 0; i < nl.num_nets(); ++i) {
    fp.finals.push_back(cell::to_char(sim.value(NetId(
        static_cast<uint32_t>(i)))));
    fp.toggles.push_back(sim.toggles(NetId(static_cast<uint32_t>(i))));
  }
  fp.events = sim.events_processed();
  fp.violation_count = sim.setup_violation_count();
  for (const SetupViolation& v : sim.setup_violations()) {
    fp.violations.emplace_back(v.at, v.cell.value(), v.data_net.value(),
                               v.slack);
  }
  for (CellId c : nl.cells()) {
    if (nl.cell(c).kind != Kind::Ram) continue;
    const uint64_t words = 1ull << nl.cell(c).p0;
    for (uint64_t a = 0; a < words; ++a) {
      fp.ram_words.emplace_back(cat(nl.cell(c).name, "@", a),
                                sim.ram_word(c, a));
    }
  }
  fp.parallel_phases = sim.parallel_phases();
  return fp;
}

// ------------------------------------------------- suite x protocol x jobs

// The headline property: for every scaling-suite circuit and every
// handshake protocol, the desynchronized circuit simulated under its
// derived domain map produces byte-identical observables at any job count.
TEST(SimParallel, ByteIdentityAcrossJobsDesyncSuite) {
  const Tech& tech = Tech::generic90();
  constexpr Ps kHorizon = 30'000;
  uint64_t phases_with_pool = 0;
  for (const circuits::Suite& s : circuits::scaling_suite()) {
    for (ctl::Protocol p : ctl::kAllProtocols) {
      SCOPED_TRACE(cat(s.name, " / ", ctl::protocol_name(p)));
      flow::DesyncOptions opt;
      opt.protocol = p;
      flow::DesyncResult dr =
          flow::desynchronize(s.circuit.netlist, s.circuit.clock, tech, opt);
      const DomainMap map = flow::sim_domains(dr);
      ASSERT_GT(map.num_domains, 1u);
      const std::vector<Poke> pokes = random_pokes(
          dr.netlist, s.circuit.clock, 17, kHorizon, 6);
      const Fingerprint serial =
          run_sharded(dr.netlist, tech, map, 1, pokes, kHorizon);
      EXPECT_EQ(serial.parallel_phases, 0u);
      for (int jobs : {2, 4, 8}) {
        SCOPED_TRACE(cat("jobs=", jobs));
        const Fingerprint par =
            run_sharded(dr.netlist, tech, map, jobs, pokes, kHorizon);
        expect_identical(serial, par);
        phases_with_pool += par.parallel_phases;
      }
    }
  }
  // The identity must not be vacuous: across the whole suite the pool has
  // to have executed multi-domain phases.
  EXPECT_GT(phases_with_pool, 0u);
}

// Correctness is independent of the domain map: a hashed map, a
// round-robin map and the trivial single-domain map all reproduce the
// oracle's trajectory on a clocked synchronous circuit — same values at
// the same times, same toggle/event counts, same violations. Within one
// map, everything (including the VCD byte stream) is identical at every
// job count; across maps only the within-timestamp VCD line order may
// legitimately differ (it follows the map's canonical domain order).
// (The hashed map is the race-hunting configuration: it maximizes
// cross-domain traffic.)
TEST(SimParallel, AnyDomainMapIsByteIdentical) {
  const Tech& tech = Tech::generic90();
  constexpr Ps kHorizon = 40'000;
  for (const char* which : {"crc32", "pipe8x16"}) {
    SCOPED_TRACE(which);
    circuits::Circuit c = std::string(which) == "crc32"
                              ? circuits::crc32()
                              : circuits::pipeline(8, 16, 3);
    const size_t n = c.netlist.num_cells();
    std::vector<DomainMap> maps;
    maps.push_back({});  // trivial: one domain
    DomainMap hashed{7, std::vector<uint32_t>(n)};
    DomainMap rr{3, std::vector<uint32_t>(n)};
    for (size_t i = 0; i < n; ++i) {
      hashed.cell_domain[i] =
          static_cast<uint32_t>((i * 0x9E3779B9u >> 16) % 7);
      rr.cell_domain[i] = static_cast<uint32_t>(i % 3);
    }
    maps.push_back(std::move(hashed));
    maps.push_back(std::move(rr));

    const std::vector<Poke> pokes =
        random_pokes(c.netlist, c.clock, 23, kHorizon, 8);
    const Fingerprint oracle = run_sharded(c.netlist, tech, maps[0], 1, pokes,
                                           kHorizon, 0, c.clock, 2'000);
    for (size_t m = 0; m < maps.size(); ++m) {
      const Fingerprint map_serial = run_sharded(
          c.netlist, tech, maps[m], 1, pokes, kHorizon, 0, c.clock, 2'000);
      // Trajectory identity vs the single-domain oracle.
      SCOPED_TRACE(cat("map=", m));
      EXPECT_EQ(oracle.finals, map_serial.finals);
      EXPECT_EQ(oracle.toggles, map_serial.toggles);
      EXPECT_EQ(oracle.events, map_serial.events);
      EXPECT_EQ(oracle.violation_count, map_serial.violation_count);
      EXPECT_EQ(oracle.violations, map_serial.violations);
      // Full byte identity (VCD included) within the map, at any jobs.
      for (int jobs : {2, 4}) {
        SCOPED_TRACE(cat("jobs=", jobs));
        expect_identical(map_serial,
                         run_sharded(c.netlist, tech, maps[m], jobs, pokes,
                                     kHorizon, 0, c.clock, 2'000));
      }
    }
  }
}

// ------------------------------------------------ determinism regressions

// Same-timestamp stimulus bursts landing on both sides of a shard
// boundary: the applied order (and therefore watcher order, last-wins
// resolution and event counts) must match the serial oracle exactly.
TEST(SimParallel, FifoTieOrderAcrossShardBoundaries) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId c = b.input("c");
  NetId ya = b.buf(a, "ya");
  NetId yc = b.buf(c, "yc");
  NetId both = b.and_({ya, yc}, "both");
  b.output(both);
  const Tech& tech = Tech::generic90();

  // ya's cone in domain 0, yc's in domain 1, the AND in domain 1.
  DomainMap map{2, std::vector<uint32_t>(nl.num_cells(), 0)};
  map.cell_domain[nl.find_cell("yc").value()] = 1;
  map.cell_domain[nl.find_cell("both").value()] = 1;

  auto run = [&](int jobs) {
    Simulator sim(nl, tech, SimOptions{jobs, map});
    std::vector<std::tuple<Ps, uint32_t, char>> log;
    for (NetId n : {ya, yc, both}) {
      sim.watch(n, [&log, n](Ps at, V v) {
        log.emplace_back(at, n.value(), cell::to_char(v));
      });
    }
    // Equal-timestamp bursts, interleaved across the boundary, including
    // several changes of the same net at the same instant (last wins).
    for (Ps t : {Ps{0}, Ps{1'000}, Ps{1'000}, Ps{2'500}}) {
      sim.set_input(a, V::V1, t);
      sim.set_input(c, V::V1, t);
      sim.set_input(a, V::V0, t);
      sim.set_input(c, V::V0, t + 1);
      sim.set_input(a, V::V1, t + 1);
    }
    sim.run_until(10'000);
    return std::make_tuple(log, sim.events_processed(),
                           cell::to_char(sim.value(both)));
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
}

// Two identical parallel runs of a handshake circuit must agree event for
// event (no dependence on thread scheduling), and chunked run_until calls
// must agree with a single-shot run across every boundary.
TEST(SimParallel, ReplayAndChunkingAreDeterministic) {
  const Tech& tech = Tech::generic90();
  constexpr Ps kHorizon = 30'000;
  circuits::Circuit c = circuits::pipeline(4, 8, 2);
  flow::DesyncResult dr =
      flow::desynchronize(c.netlist, c.clock, tech, flow::DesyncOptions{});
  const DomainMap map = flow::sim_domains(dr);
  const std::vector<Poke> pokes =
      random_pokes(dr.netlist, c.clock, 29, kHorizon, 6);

  const Fingerprint once =
      run_sharded(dr.netlist, tech, map, 4, pokes, kHorizon);
  const Fingerprint again =
      run_sharded(dr.netlist, tech, map, 4, pokes, kHorizon);
  expect_identical(once, again);

  // Chunk sizes deliberately not divisors of the horizon, so run
  // boundaries land mid-flight of in-progress handshakes.
  for (Ps chunk : {Ps{997}, Ps{7'001}}) {
    SCOPED_TRACE(cat("chunk=", chunk));
    expect_identical(
        once, run_sharded(dr.netlist, tech, map, 4, pokes, kHorizon, chunk));
  }
}

// A capture edge exactly coincident with a cross-domain data change: the
// producing domain commits D at time T while the consuming domain's DFF
// captures at the same T. An off-by-one in the cross-domain
// synchronization (capture evaluated before the remote commit is visible)
// would capture stale data or mis-record the setup violation. The exact
// interleaving must match the serial oracle.
TEST(SimParallel, BoundaryCoincidentCaptureMatchesSerial) {
  Netlist nl("t");
  Builder b(nl);
  NetId d = b.input("d");
  NetId ck = b.input("ck");
  NetId x = b.buf(d, "x");  // domain 0 drives the boundary net x
  NetId q = b.dff(x, ck, V::V0, "q");  // domain 1 captures it
  b.output(q);
  const Tech& tech = Tech::generic90();

  DomainMap map{2, std::vector<uint32_t>(nl.num_cells(), 0)};
  map.cell_domain[nl.find_cell("q").value()] = 1;

  // Discover when x settles after a d poke at t=1000 (tech-dependent).
  Ps x_change = -1;
  {
    Simulator probe(nl, tech, SimOptions{1, map});
    probe.watch(x, [&](Ps at, V v) {
      if (v == V::V1) x_change = at;
    });
    probe.set_input(d, V::V0, 0);
    probe.set_input(ck, V::V0, 0);
    probe.set_input(d, V::V1, 1'000);
    probe.run_until(5'000);
    ASSERT_GT(x_change, 0);
  }

  auto run = [&](int jobs) {
    Simulator sim(nl, tech, SimOptions{jobs, map});
    std::vector<std::tuple<Ps, uint32_t, char>> log;
    for (NetId n : {x, ck, q}) {
      sim.watch(n, [&log, n](Ps at, V v) {
        log.emplace_back(at, n.value(), cell::to_char(v));
      });
    }
    sim.set_input(d, V::V0, 0);
    sim.set_input(ck, V::V0, 0);
    sim.set_input(d, V::V1, 1'000);
    sim.set_input(ck, V::V1, x_change);  // rise exactly at the data commit
    sim.run_until(10'000);
    std::vector<std::tuple<Ps, uint32_t, uint32_t, Ps>> viols;
    for (const SetupViolation& v : sim.setup_violations()) {
      viols.emplace_back(v.at, v.cell.value(), v.data_net.value(), v.slack);
    }
    return std::make_tuple(log, cell::to_char(sim.value(q)),
                           sim.setup_violation_count(), viols,
                           sim.events_processed());
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
}

// RAM contents are owner-committed state too: two RAMs in different
// domains, written from a third, must end up word-identical at any job
// count (covered above only when a suite circuit has RAMs — none do).
TEST(SimParallel, RamStateIdenticalAcrossJobs) {
  Netlist nl("t");
  Builder b(nl);
  NetId ck = b.input("ck");
  NetId we = b.input("we");
  std::vector<NetId> wa = {b.input("wa0"), b.input("wa1")};
  std::vector<NetId> wd;
  for (int i = 0; i < 4; ++i) wd.push_back(b.input(cat("wd", i)));
  std::vector<NetId> ra = {b.input("ra0"), b.input("ra1")};
  auto rd0 = b.ram(ck, we, wa, wd, ra, 4, "m0");
  auto rd1 = b.ram(ck, we, wa, wd, ra, 4, "m1");
  for (NetId n : rd0) b.output(n);
  for (NetId n : rd1) b.output(n);
  const Tech& tech = Tech::generic90();

  DomainMap map{3, std::vector<uint32_t>(nl.num_cells(), 0)};
  map.cell_domain[nl.find_cell("m0").value()] = 1;
  map.cell_domain[nl.find_cell("m1").value()] = 2;

  constexpr Ps kHorizon = 50'000;
  const std::vector<Poke> pokes = random_pokes(nl, ck, 31, kHorizon, 10);
  const Fingerprint serial = run_sharded(nl, tech, map, 1, pokes, kHorizon, 0,
                                         ck, 4'000);
  ASSERT_EQ(serial.ram_words.size(), 8u);  // 2 RAMs x 4 words
  for (int jobs : {2, 4}) {
    SCOPED_TRACE(cat("jobs=", jobs));
    expect_identical(serial, run_sharded(nl, tech, map, jobs, pokes, kHorizon,
                                         0, ck, 4'000));
  }
}

// --------------------------------------------------- domain-map derivation

// derive_domains: seeded cells keep their label and act as cuts, producers
// flood to their nearest seed (min label on ties), unreached cells land in
// the trailing environment bucket.
TEST(SimParallel, DeriveDomainsSeedsCutsAndEnvBucket) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId b0 = b.buf(a, "b0");
  NetId b1 = b.buf(b0, "b1");
  NetId b2 = b.buf(b1, "b2");
  b.output(b2);
  NetId u = b.input("u");
  NetId lone = b.buf(u, "lone");  // reaches no seed
  b.output(lone);

  std::vector<int32_t> seed(nl.num_cells(), -1);
  seed[nl.find_cell("b1").value()] = 0;
  seed[nl.find_cell("b2").value()] = 1;
  DomainMap map = derive_domains(nl, 2, seed);
  EXPECT_EQ(map.num_domains, 3u);
  EXPECT_EQ(map.cell_domain[nl.find_cell("b1").value()], 0u);
  EXPECT_EQ(map.cell_domain[nl.find_cell("b2").value()], 1u);
  // b0 floods from b1 only: b2's flood stops at the b1 cut.
  EXPECT_EQ(map.cell_domain[nl.find_cell("b0").value()], 0u);
  EXPECT_EQ(map.cell_domain[nl.find_cell("lone").value()], 2u);
}

// flow::sim_domains ties the shards to the resolved partition: one domain
// per bank-pair group holding its own storage, plus the environment pair
// and the unreached bucket.
TEST(SimParallel, SimDomainsFollowThePartition) {
  const Tech& tech = Tech::generic90();
  circuits::Circuit c = circuits::pipeline(4, 8, 2);
  flow::DesyncResult dr =
      flow::desynchronize(c.netlist, c.clock, tech, flow::DesyncOptions{});
  const DomainMap map = flow::sim_domains(dr);
  const auto groups = static_cast<uint32_t>(dr.partition.num_groups());
  EXPECT_EQ(map.num_domains, groups + 2);
  for (size_t bank = 0; bank < dr.banks.banks.size(); ++bank) {
    if (bank / 2 >= groups) break;  // env pair
    for (CellId cell : dr.banks.banks[bank].latches) {
      EXPECT_EQ(map.cell_domain[cell.value()],
                static_cast<uint32_t>(bank / 2))
          << dr.netlist.cell(cell).name;
    }
  }
}

// ------------------------------------------------------- flow equivalence

// The flow-equivalence verdict — streams, periods, powers, violation
// counts — is byte-identical when both simulators shard: sim_jobs is a
// pure performance knob end to end.
TEST(SimParallel, FlowEqVerdictIdenticalAcrossSimJobs) {
  const Tech& tech = Tech::generic90();
  const std::vector<std::pair<circuits::Circuit, ctl::Protocol>> cases = [] {
    std::vector<std::pair<circuits::Circuit, ctl::Protocol>> v;
    v.emplace_back(circuits::pipeline(4, 8, 2), ctl::Protocol::Pulse);
    v.emplace_back(circuits::pipeline(4, 8, 2), ctl::Protocol::FullyDecoupled);
    v.emplace_back(circuits::counter_bank(4, 8), ctl::Protocol::SemiDecoupled);
    return v;
  }();
  for (const auto& [c, protocol] : cases) {
    SCOPED_TRACE(ctl::protocol_name(protocol));
    auto check = [&, &c = c](int sim_jobs) {
      verif::FlowEqOptions opt;
      opt.rounds = 12;
      opt.desync.protocol = protocol;
      opt.desync.sim_jobs = sim_jobs;
      return verif::check_flow_equivalence(c.netlist, c.clock,
                                           verif::random_stimulus(17), tech,
                                           opt);
    };
    const verif::FlowEqResult serial = check(1);
    EXPECT_TRUE(serial.equivalent) << serial.mismatch;
    for (int jobs : {2, 4}) {
      SCOPED_TRACE(cat("sim_jobs=", jobs));
      const verif::FlowEqResult par = check(jobs);
      EXPECT_EQ(serial.equivalent, par.equivalent);
      EXPECT_EQ(serial.mismatch, par.mismatch);
      EXPECT_EQ(serial.registers_compared, par.registers_compared);
      EXPECT_EQ(serial.captures_compared, par.captures_compared);
      EXPECT_EQ(serial.sync_period, par.sync_period);
      EXPECT_EQ(serial.desync_period, par.desync_period);
      EXPECT_EQ(serial.predicted_period, par.predicted_period);
      EXPECT_EQ(serial.sync_setup_violations, par.sync_setup_violations);
      EXPECT_EQ(serial.desync_setup_violations, par.desync_setup_violations);
      EXPECT_EQ(serial.sync_power_mw, par.sync_power_mw);
      EXPECT_EQ(serial.desync_power_mw, par.desync_power_mw);
      EXPECT_EQ(serial.sync_clock_power_mw, par.sync_clock_power_mw);
      EXPECT_EQ(serial.desync_ctl_power_mw, par.desync_ctl_power_mw);
    }
  }
}

}  // namespace
}  // namespace desyn::sim
