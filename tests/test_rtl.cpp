#include "rtl/bus.h"

#include <gtest/gtest.h>

#include "sim/sim.h"

namespace desyn::rtl {
namespace {

using cell::Tech;
using cell::V;
using nl::Builder;
using nl::Netlist;

/// Harness: build a combinational function of two W-bit inputs, evaluate it
/// in the simulator for random vectors and compare with `ref`.
struct TwoInput {
  Netlist nl{"t"};
  Bus a, b, y;
  nl::NetId flag = nl::NetId::invalid();
};

void check_two_input(TwoInput& t, uint64_t (*ref)(uint64_t, uint64_t, int),
                     int width, int vectors = 50, uint64_t seed = 9) {
  sim::Simulator sim(t.nl, Tech::generic90());
  Rng rng(seed);
  uint64_t mask = width == 64 ? ~0ull : (1ull << width) - 1;
  for (int k = 0; k < vectors; ++k) {
    uint64_t av = rng.next() & mask;
    uint64_t bv = rng.next() & mask;
    sim::poke_word(sim, t.a, av, sim.now());
    sim::poke_word(sim, t.b, bv, sim.now());
    sim.run_until(sim.now() + 20000);
    bool has_x = false;
    uint64_t got = sim::read_word(sim, t.y, &has_x);
    EXPECT_FALSE(has_x) << "X in output, vector " << k;
    EXPECT_EQ(got, ref(av, bv, width) & (t.y.size() == 64
                                             ? ~0ull
                                             : (1ull << t.y.size()) - 1))
        << "a=" << av << " b=" << bv;
  }
}

TwoInput make(int width, Bus (*fn)(Word&, const Bus&, const Bus&)) {
  TwoInput t;
  Builder b(t.nl);
  Word w(b);
  t.a = w.input("a", width);
  t.b = w.input("b", width);
  t.y = fn(w, t.a, t.b);
  w.output(t.y);
  return t;
}

TEST(Word, AddMatchesReference) {
  for (int width : {4, 8, 16, 32}) {
    TwoInput t = make(width, [](Word& w, const Bus& a, const Bus& b) {
      return w.add(a, b);
    });
    check_two_input(t, [](uint64_t a, uint64_t b, int) { return a + b; },
                    width);
  }
}

TEST(Word, SubMatchesReference) {
  TwoInput t = make(16, [](Word& w, const Bus& a, const Bus& b) {
    return w.sub(a, b);
  });
  check_two_input(t, [](uint64_t a, uint64_t b, int) { return a - b; }, 16);
}

TEST(Word, BitwiseOpsMatchReference) {
  TwoInput t1 = make(12, [](Word& w, const Bus& a, const Bus& b) {
    return w.and_(a, b);
  });
  check_two_input(t1, [](uint64_t a, uint64_t b, int) { return a & b; }, 12);
  TwoInput t2 = make(12, [](Word& w, const Bus& a, const Bus& b) {
    return w.xor_(a, b);
  });
  check_two_input(t2, [](uint64_t a, uint64_t b, int) { return a ^ b; }, 12);
  TwoInput t3 = make(12, [](Word& w, const Bus& a, const Bus& b) {
    return w.or_(w.not_(a), b);
  });
  check_two_input(t3, [](uint64_t a, uint64_t b, int w) {
    return (~a & ((uint64_t{1} << w) - 1)) | b;
  }, 12);
}

TEST(Word, ComparisonsMatchReference) {
  TwoInput t = make(10, [](Word& w, const Bus& a, const Bus& b) {
    return Bus{w.ult(a, b), w.eq(a, b), w.slt(a, b), w.is_zero(a)};
  });
  check_two_input(t, [](uint64_t a, uint64_t b, int w) -> uint64_t {
    auto sign = [w](uint64_t v) -> int64_t {
      return static_cast<int64_t>(v << (64 - w)) >> (64 - w);
    };
    uint64_t r = 0;
    if (a < b) r |= 1;
    if (a == b) r |= 2;
    if (sign(a) < sign(b)) r |= 4;
    if (a == 0) r |= 8;
    return r;
  }, 10, 200);
}

TEST(Word, MuxNSelectsChoice) {
  Netlist nl("t");
  Builder b(nl);
  Word w(b);
  Bus sel = w.input("s", 2);
  std::vector<Bus> choices = {w.constant(0x3, 4), w.constant(0x5, 4),
                              w.constant(0x9, 4), w.constant(0xe, 4)};
  Bus y = w.mux_n(choices, sel);
  w.output(y);
  sim::Simulator sim(nl, Tech::generic90());
  uint64_t expect[] = {0x3, 0x5, 0x9, 0xe};
  for (uint64_t s = 0; s < 4; ++s) {
    sim::poke_word(sim, sel, s, sim.now());
    sim.run_until(sim.now() + 5000);
    EXPECT_EQ(sim::read_word(sim, y), expect[s]);
  }
}

TEST(Word, DecodeOneHot) {
  Netlist nl("t");
  Builder b(nl);
  Word w(b);
  Bus sel = w.input("s", 3);
  Bus hot = w.decode(sel);
  w.output(hot);
  sim::Simulator sim(nl, Tech::generic90());
  for (uint64_t s = 0; s < 8; ++s) {
    sim::poke_word(sim, sel, s, sim.now());
    sim.run_until(sim.now() + 5000);
    EXPECT_EQ(sim::read_word(sim, hot), 1ull << s);
  }
}

TEST(Word, SignZeroExtendAndShift) {
  Netlist nl("t");
  Builder b(nl);
  Word w(b);
  Bus a = w.input("a", 4);
  Bus se = w.sign_extend(a, 8);
  Bus ze = w.zero_extend(a, 8);
  Bus sh = w.shl_const(a, 2);
  w.output(se);
  w.output(ze);
  w.output(sh);
  sim::Simulator sim(nl, Tech::generic90());
  sim::poke_word(sim, a, 0xA, sim.now());  // negative in 4 bits
  sim.run_until(5000);
  EXPECT_EQ(sim::read_word(sim, se), 0xFAu);
  EXPECT_EQ(sim::read_word(sim, ze), 0x0Au);
  EXPECT_EQ(sim::read_word(sim, sh), 0x8u);  // 0xA<<2 = 0x28 truncated to 4b
}

TEST(RegFile, WriteReadPortsAndR0) {
  Netlist nl("t");
  Builder b(nl);
  Word w(b);
  nl::NetId clk = b.input("clk");
  Bus waddr = w.input("wa", 3);
  Bus wdata = w.input("wd", 8);
  nl::NetId we = b.input("we");
  Bus ra0 = w.input("ra0", 3);
  Bus ra1 = w.input("ra1", 3);
  RegFile rf = regfile(w, clk, 8, 8, waddr, wdata, we, {ra0, ra1}, "rf");
  w.output(rf.read_data[0]);
  w.output(rf.read_data[1]);

  sim::Simulator sim(nl, Tech::generic90());
  auto clock_pulse = [&](Ps at) {
    sim.set_input(clk, V::V1, at);
    sim.set_input(clk, V::V0, at + 1000);
  };
  sim.set_input(clk, V::V0, 0);
  sim.set_input(we, V::V1, 0);
  sim::poke_word(sim, waddr, 3, 0);
  sim::poke_word(sim, wdata, 0x5a, 0);
  sim::poke_word(sim, ra0, 3, 0);
  sim::poke_word(sim, ra1, 0, 0);
  sim.run_until(1900);
  clock_pulse(2000);
  sim.run_until(4000);
  EXPECT_EQ(sim::read_word(sim, rf.read_data[0]), 0x5au);
  EXPECT_EQ(sim::read_word(sim, rf.read_data[1]), 0u);  // r0 reads zero

  // Writes to r0 are ignored.
  sim::poke_word(sim, waddr, 0, 4000);
  sim::poke_word(sim, wdata, 0xff, 4000);
  sim.run_until(5900);
  clock_pulse(6000);
  sim.run_until(8000);
  EXPECT_EQ(sim::read_word(sim, rf.read_data[1]), 0u);
  // And the earlier write persisted.
  EXPECT_EQ(sim::read_word(sim, rf.read_data[0]), 0x5au);

  // WE low: no write.
  sim.set_input(we, V::V0, 8000);
  sim::poke_word(sim, waddr, 3, 8000);
  sim::poke_word(sim, wdata, 0x11, 8000);
  sim.run_until(9900);
  clock_pulse(10000);
  sim.run_until(12000);
  EXPECT_EQ(sim::read_word(sim, rf.read_data[0]), 0x5au);
}

}  // namespace
}  // namespace desyn::rtl
