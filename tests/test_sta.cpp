#include "sta/sta.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "sta/paths.h"

namespace desyn::sta {
namespace {

using cell::Kind;
using cell::Tech;
using cell::V;
using nl::Builder;
using nl::Netlist;
using nl::NetId;

TEST(Sta, ChainArrivalIsSumOfDelays) {
  Netlist nl("t");
  Builder b(nl);
  const Tech& t = Tech::generic90();
  NetId a = b.input("a");
  NetId n1 = b.inv(a);
  NetId n2 = b.buf(n1);
  NetId y = b.xor_(n2, n2, "y");
  b.output(y);

  Sta sta(nl, t);
  Source src[] = {{a, 0}};
  auto arr = sta.arrivals(src);
  // inv drives one pin, buf drives two pins (both xor inputs)... fanout of
  // n1 is 1 (buf), n2 is 2 (two xor pins), y is 0.
  Ps d_inv = t.delay(Kind::Inv, 1, 1);
  Ps d_buf = t.delay(Kind::Buf, 1, 2);
  Ps d_xor = t.delay(Kind::Xor, 2, 0);
  EXPECT_EQ(arr[n1.value()], d_inv);
  EXPECT_EQ(arr[n2.value()], d_inv + d_buf);
  EXPECT_EQ(arr[y.value()], d_inv + d_buf + d_xor);
}

TEST(Sta, UnreachedNetsStayUnreached) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId c = b.input("c");
  NetId y1 = b.inv(a);
  NetId y2 = b.inv(c);
  b.output(y1);
  b.output(y2);
  Sta sta(nl, Tech::generic90());
  Source src[] = {{a, 0}};
  auto arr = sta.arrivals(src);
  EXPECT_NE(arr[y1.value()], kUnreached);
  EXPECT_EQ(arr[y2.value()], kUnreached);
  EXPECT_EQ(arr[c.value()], kUnreached);
}

TEST(Sta, MinPeriodOfFfPipeline) {
  Netlist nl("t");
  Builder b(nl);
  const Tech& t = Tech::generic90();
  NetId d = b.input("d");
  NetId ck = b.input("ck");
  NetId q0 = b.dff(d, ck, V::V0, "q0");
  NetId x = b.inv(q0);
  NetId q1 = b.dff(x, ck, V::V0, "q1");
  b.output(q1);

  Sta sta(nl, t);
  auto rep = sta.min_clock_period();
  // Worst path: q0 clk->q (fanout 1) + inv (fanout 1) + setup.
  Ps expect = t.delay(Kind::Dff, 2, 1) + t.delay(Kind::Inv, 1, 1) +
              t.dff_setup();
  EXPECT_EQ(rep.min_period, expect);
  ASSERT_TRUE(rep.worst_capture.valid());
  EXPECT_EQ(nl.cell(rep.worst_capture).outs[0], q1);
  ASSERT_TRUE(rep.worst_launch.valid());
  EXPECT_EQ(nl.cell(rep.worst_launch).outs[0], q0);
  EXPECT_NE(format_period_report(nl, rep).find("min clock period"),
            std::string::npos);
}

TEST(Sta, StorageDoesNotPropagate) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId ck = b.input("ck");
  NetId q = b.dff(a, ck, V::V0);
  NetId y = b.inv(q);
  b.output(y);
  Sta sta(nl, Tech::generic90());
  Source src[] = {{a, 0}};
  auto arr = sta.arrivals(src);
  EXPECT_EQ(arr[q.value()], kUnreached);
  EXPECT_EQ(arr[y.value()], kUnreached);
}

TEST(Sta, RamReadPathPropagatesWritePinsDoNot) {
  Netlist nl("t");
  Builder b(nl);
  const Tech& t = Tech::generic90();
  NetId ck = b.input("ck");
  NetId we = b.input("we");
  std::vector<NetId> wa, wd, ra;
  for (int i = 0; i < 2; ++i) wa.push_back(b.input(cat("wa", i)));
  for (int i = 0; i < 4; ++i) wd.push_back(b.input(cat("wd", i)));
  for (int i = 0; i < 2; ++i) ra.push_back(b.input(cat("ra", i)));
  auto rd = b.ram(ck, we, wa, wd, ra, 4, "m");
  for (NetId r : rd) b.output(r);

  Sta sta(nl, t);
  Source src_ra[] = {{ra[0], 0}};
  auto arr = sta.arrivals(src_ra);
  EXPECT_NE(arr[rd[0].value()], kUnreached);

  Source src_wd[] = {{wd[0], 0}};
  auto arr2 = sta.arrivals(src_wd);
  EXPECT_EQ(arr2[rd[0].value()], kUnreached);

  // Write pins are setup endpoints.
  nl::CellId ram = nl.find_cell("m");
  ASSERT_TRUE(ram.valid());
  EXPECT_NE(sta.storage_input_arrival(arr2, ram), kUnreached);
}

TEST(Sta, TracePathWalksBackToSource) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId n1 = b.inv(a);
  NetId n2 = b.inv(n1);
  NetId n3 = b.inv(n2);
  b.output(n3);
  Sta sta(nl, Tech::generic90());
  Source src[] = {{a, 0}};
  auto arr = sta.arrivals(src);
  auto path = sta.trace_path(arr, n3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), n3);
  std::string s = format_path(nl, arr, path);
  EXPECT_NE(s.find("primary input"), std::string::npos);
}

TEST(Sta, PureCombinationalFallsBackToPoArrival) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId y = b.inv(b.inv(a));
  b.output(y);
  Sta sta(nl, Tech::generic90());
  auto rep = sta.min_clock_period();
  EXPECT_GT(rep.min_period, 0);
}

TEST(Sta, LongerOfTwoPathsWins) {
  Netlist nl("t");
  Builder b(nl);
  const Tech& t = Tech::generic90();
  NetId a = b.input("a");
  // Short path: direct; long path: 3 inverters.
  NetId s = b.buf(a);
  NetId l = b.inv(b.inv(b.inv(a)));
  NetId y = b.and_({s, l});
  b.output(y);
  Sta sta(nl, t);
  Source src[] = {{a, 0}};
  auto arr = sta.arrivals(src);
  Ps d_inv1 = t.delay(Kind::Inv, 1, 1);
  Ps d_and = t.delay(Kind::And, 2, 0);
  EXPECT_EQ(arr[y.value()], 3 * d_inv1 + d_and);
}

}  // namespace
}  // namespace desyn::sta
