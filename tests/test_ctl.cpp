#include "ctl/protocol.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ctl/conformance.h"
#include "ctl/controller.h"
#include "pn/analysis.h"
#include "pn/mcr.h"
#include "sim/sim.h"

namespace desyn::ctl {
namespace {

using cell::Tech;

/// Linear pipeline of `n` (even) banks alternating even/odd, starting even,
/// each edge with the given matched delay. Rings close directly; lines are
/// closed through an environment pair (as the flow does), so every bank has
/// a predecessor and a successor.
ControlGraph pipeline_cg(int n, Ps delay = 0, bool ring = false) {
  DESYN_ASSERT(n % 2 == 0);
  ControlGraph cg;
  for (int i = 0; i < n; ++i) {
    cg.add_bank(cat("B", i), i % 2 == 0);
  }
  for (int i = 0; i + 1 < n; ++i) cg.add_edge(i, i + 1, delay);
  if (ring) {
    cg.add_edge(n - 1, 0, delay);
  } else {
    int snk = cg.add_bank("env_snk", true);   // last bank is odd
    int src = cg.add_bank("env_src", false);  // first bank is even
    cg.add_edge(n - 1, snk, delay);
    cg.add_edge(snk, src, 0);
    cg.add_edge(src, 0, delay);
  }
  return cg;
}

constexpr auto& kAll = kAllProtocols;

TEST(ControlGraph, ParityEnforced) {
  ControlGraph cg;
  int a = cg.add_bank("a", true);
  int b = cg.add_bank("b", true);
  (void)b;
  EXPECT_DEATH(cg.add_edge(a, b), "opposite parity");
}

TEST(ControlGraph, DuplicateEdgeMergedWithMaxDelay) {
  ControlGraph cg;
  int a = cg.add_bank("a", true);
  int b = cg.add_bank("b", false);
  int e1 = cg.add_edge(a, b, 100);
  int e2 = cg.add_edge(a, b, 300);
  EXPECT_EQ(e1, e2);
  ASSERT_EQ(cg.edges().size(), 1u);
  EXPECT_EQ(cg.edges()[0].matched_delay, 300);
}

TEST(ControlGraph, PredsSuccs) {
  ControlGraph cg = pipeline_cg(4);
  // The env pair closes the line: B0's predecessor is env_src.
  EXPECT_EQ(cg.preds(0), std::vector<int>{cg.find_bank("env_src")});
  EXPECT_EQ(cg.succs(0), std::vector<int>{1});
  EXPECT_EQ(cg.preds(2), std::vector<int>{1});
  EXPECT_EQ(cg.find_bank("B2"), 2);
  EXPECT_EQ(cg.find_bank("nope"), -1);
}

class ProtocolProperties
    : public ::testing::TestWithParam<std::tuple<Protocol, int, bool>> {};

TEST_P(ProtocolProperties, LiveSafeAndCanonicallyAdmissible) {
  auto [proto, n, ring] = GetParam();
  ControlGraph cg = pipeline_cg(n, 0, ring);
  pn::MarkedGraph mg = protocol_mg(cg, proto);
  EXPECT_TRUE(pn::is_live(mg)) << protocol_name(proto) << " n=" << n;
  EXPECT_TRUE(pn::is_safe(mg)) << protocol_name(proto) << " n=" << n;
  auto seq = canonical_schedule(mg, cg, proto, 4);
  EXPECT_EQ(pn::admits_sequence(mg, seq), -1)
      << protocol_name(proto) << " n=" << n << " ring=" << ring;
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, ProtocolProperties,
    ::testing::Combine(::testing::ValuesIn(kAll),
                       ::testing::Values(2, 4, 6, 8, 12),
                       ::testing::Values(false, true)));

TEST(Protocol, Fig4PairwiseMarkings) {
  // The even->odd fragment of Fig. 4: a+ -> b- marked, b- -> a+ unmarked.
  ControlGraph cg;
  int a = cg.add_bank("A", true);
  int b = cg.add_bank("B", false);
  cg.add_edge(a, b, 0);
  pn::MarkedGraph mg = protocol_mg(cg, Protocol::FullyDecoupled);
  // Arcs: A+->A-, A-->A+, B+->B-, B-->B+, A+->B-, B-->A+.
  ASSERT_EQ(mg.num_arcs(), 6u);
  auto bt = bank_transitions(mg, cg);
  for (uint32_t i = 0; i < mg.num_arcs(); ++i) {
    const pn::Arc& arc = mg.arc(pn::ArcId(i));
    if (arc.from == bt[0].plus && arc.to == bt[1].minus) {
      EXPECT_EQ(arc.tokens, 1);  // a+ -> b- marked
    }
    if (arc.from == bt[1].minus && arc.to == bt[0].plus) {
      EXPECT_EQ(arc.tokens, 0);  // b- -> a+ unmarked
    }
  }
  // Alternation tokens follow transparency: A (even) has a+ -> a- marked.
  for (uint32_t i = 0; i < mg.num_arcs(); ++i) {
    const pn::Arc& arc = mg.arc(pn::ArcId(i));
    if (arc.from == bt[0].plus && arc.to == bt[0].minus) {
      EXPECT_EQ(arc.tokens, 1);
    }
    if (arc.from == bt[1].minus && arc.to == bt[1].plus) {
      EXPECT_EQ(arc.tokens, 1);
    }
    if (arc.from == bt[1].plus && arc.to == bt[1].minus) {
      EXPECT_EQ(arc.tokens, 0);
    }
  }
}

TEST(Protocol, ConcurrencyOrdering) {
  // Each protocol adds arcs to the next more concurrent one (Lockstep =
  // SemiDecoupled + same-sign rendezvous, SemiDecoupled = FullyDecoupled +
  // mirror arcs), so its behavior is a restriction: it can never reach
  // more markings.
  ControlGraph cg = pipeline_cg(4, 0, true);
  auto states = [&](Protocol p) {
    return pn::explore(protocol_mg(cg, p)).states;
  };
  EXPECT_LE(states(Protocol::Lockstep), states(Protocol::SemiDecoupled));
  EXPECT_LE(states(Protocol::SemiDecoupled), states(Protocol::FullyDecoupled));
  EXPECT_GT(states(Protocol::FullyDecoupled), 1u);
}

TEST(Protocol, TimedArcsCarryMatchedDelay) {
  ControlGraph cg = pipeline_cg(2, 500);
  pn::MarkedGraph mg = protocol_mg(cg, Protocol::FullyDecoupled, 55);
  auto bt = bank_transitions(mg, cg);
  bool found = false;
  for (uint32_t i = 0; i < mg.num_arcs(); ++i) {
    const pn::Arc& arc = mg.arc(pn::ArcId(i));
    if (arc.from == bt[0].plus && arc.to == bt[1].minus) {
      EXPECT_EQ(arc.delay, 555);  // matched + controller
      found = true;
    }
    if (arc.from == bt[1].minus && arc.to == bt[0].plus) {
      EXPECT_EQ(arc.delay, 55);  // controller only
    }
  }
  EXPECT_TRUE(found);
}

TEST(Protocol, McrThroughputOrdering) {
  // With per-edge delays, the decoupled protocols are at least as fast
  // (lower cycle ratio) as lockstep.
  ControlGraph cg = pipeline_cg(6, 300, true);
  auto period = [&](Protocol p) {
    return pn::max_cycle_ratio(protocol_mg(cg, p, 55)).ratio;
  };
  double lock = period(Protocol::Lockstep);
  double semi = period(Protocol::SemiDecoupled);
  double full = period(Protocol::FullyDecoupled);
  EXPECT_GE(lock + 1e-6, semi);
  EXPECT_GE(semi + 1e-6, full);
  EXPECT_GT(full, 0.0);
}

// ---- gate level -------------------------------------------------------------

struct GateCase {
  int banks;
  bool ring;
  Ps delay;
  bool alternating;  ///< alternate tiny/large delays (the M/S shape)
};

ControlGraph gate_cg(const GateCase& gc) {
  if (!gc.alternating) return pipeline_cg(gc.banks, gc.delay, gc.ring);
  ControlGraph cg;
  for (int i = 0; i < gc.banks; ++i) cg.add_bank(cat("B", i), i % 2 == 0);
  for (int i = 0; i + (gc.ring ? 0 : 1) < gc.banks; ++i) {
    cg.add_edge(i, (i + 1) % gc.banks, i % 2 == 0 ? 10 : gc.delay);
  }
  if (!gc.ring) {
    int snk = cg.add_bank("env_snk", true);
    int src = cg.add_bank("env_src", false);
    cg.add_edge(gc.banks - 1, snk, gc.delay);
    cg.add_edge(snk, src, 0);
    cg.add_edge(src, 0, gc.delay);
  }
  return cg;
}

class ControllerGates
    : public ::testing::TestWithParam<std::tuple<Protocol, GateCase>> {};

TEST_P(ControllerGates, OscillatesAndConforms) {
  auto [proto, gc] = GetParam();
  ControlGraph cg = gate_cg(gc);
  nl::Netlist nl("ctrl");
  nl::Builder b(nl);
  ControllerNetwork net =
      synthesize_controllers(b, cg, proto, Tech::generic90());
  nl.check();

  sim::Simulator sim(nl, Tech::generic90());
  TraceRecorder rec(sim, cg, net.enables);
  sim.run_until(400000);

  // Progress: every bank's enable toggles many times (no deadlock, no
  // inertially swallowed transparency window) — including under strongly
  // unbalanced delays.
  for (nl::NetId en : net.enables) {
    EXPECT_GT(sim.toggles(en), 20u)
        << protocol_name(proto) << " " << nl.net(en).name;
  }
  // Conformance to the protocol MG.
  EXPECT_EQ(check_conformance(cg, proto, rec.trace()), -1)
      << protocol_name(proto);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ControllerGates,
    ::testing::Combine(
        ::testing::ValuesIn(kAll),
        ::testing::Values(GateCase{2, false, 0, false},
                          GateCase{4, false, 200, false},
                          GateCase{4, true, 0, false},
                          GateCase{6, true, 500, false},
                          GateCase{8, false, 350, false},
                          GateCase{10, true, 150, false},
                          GateCase{8, true, 900, true},     // M/S alt. ring
                          GateCase{6, false, 700, true},    // M/S line + env
                          GateCase{8, true, 1200, true}))); // unbalanced

class MeasuredPeriod : public ::testing::TestWithParam<Protocol> {};

TEST_P(MeasuredPeriod, TracksMcrOfHardwareModel) {
  Protocol proto = GetParam();
  ControlGraph cg = pipeline_cg(4, 600, true);
  nl::Netlist nl("ctrl");
  nl::Builder b(nl);
  ControllerNetwork net =
      synthesize_controllers(b, cg, proto, Tech::generic90());

  sim::Simulator sim(nl, Tech::generic90());
  std::vector<Ps> rises;
  sim.watch(net.enables[0], [&](Ps at, sim::V v) {
    if (v == sim::V::V1) rises.push_back(at);
  });
  sim.run_until(500000);
  ASSERT_GT(rises.size(), 10u) << protocol_name(proto);
  Ps measured = (rises.back() - rises[rises.size() - 9]) / 8;

  // Analytic prediction: hardware MG with controller delay = C-element and
  // matched delays sized and quantized exactly as the synthesis does.
  const Tech& t = Tech::generic90();
  ControlGraph cg2 = quantize_matched_delays(cg, t);
  Ps ctrl = t.delay(cell::Kind::Inv, 1, 1) + t.delay(cell::Kind::CElem, 2, 2);
  auto mcr = pn::max_cycle_ratio(
      hardware_mg(cg2, proto, ctrl, net.pulse_width));
  // The MG is a lower bound (it abstracts fanout-dependent gate delays,
  // join trees and the token-gating AND); the gate level must stay within
  // 45% of it and never beat it by more than the abstraction slack.
  EXPECT_GT(static_cast<double>(measured), 0.75 * mcr.ratio)
      << protocol_name(proto);
  EXPECT_LT(static_cast<double>(measured), 1.45 * mcr.ratio)
      << protocol_name(proto);
}

INSTANTIATE_TEST_SUITE_P(Protocols, MeasuredPeriod, ::testing::ValuesIn(kAll),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           std::string n = protocol_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(Controller, EveryProtocolSynthesizesToGates) {
  // The protocol matrix after this change: all four protocols are hardware.
  for (Protocol p : kAll) {
    ControlGraph cg = pipeline_cg(4, 300);
    nl::Netlist nl("c");
    nl::Builder b(nl);
    ControllerNetwork net = synthesize_controllers(b, cg, p, Tech::generic90());
    nl.check();
    EXPECT_EQ(net.enables.size(), cg.num_banks()) << protocol_name(p);
    EXPECT_GE(net.delay_units, cg.edges().size() > 0 ? 1u : 0u);
    size_t celems = 0;
    for (nl::CellId c : nl.cells()) {
      if (nl.cell(c).kind == cell::Kind::CElem) ++celems;
    }
    // Pulse: one C per bank; level protocols: one C per transition (two
    // per bank) plus the reset kick.
    size_t min_c = p == Protocol::Pulse ? cg.num_banks() : 2 * cg.num_banks();
    EXPECT_GE(celems, min_c) << protocol_name(p);
  }
}

TEST(Controller, LevelEnablesStartAtSynchronousReset) {
  // Even banks (masters) are transparent at CLK=0 in the synchronous
  // reference; the level controllers must reproduce that reset state.
  ControlGraph cg = pipeline_cg(4, 100);
  nl::Netlist nl("c");
  nl::Builder b(nl);
  ControllerNetwork net = synthesize_controllers(
      b, cg, Protocol::FullyDecoupled, Tech::generic90());
  sim::Simulator sim(nl, Tech::generic90());
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    EXPECT_EQ(sim.value(net.enables[i]),
              cg.bank(static_cast<int>(i)).even ? cell::V::V1 : cell::V::V0)
        << cg.bank(static_cast<int>(i)).name;
  }
}

TEST(Controller, DelayLineSizedFromMatchedDelay) {
  const Tech& t = Tech::generic90();
  const Ps credit = controller_response_credit(t);
  ControlGraph cg;
  int a = cg.add_bank("a", true);
  int bb = cg.add_bank("b", false);
  const Ps d = 3 * t.delay_unit() - 1 + credit;  // ceil -> exactly 3 cells
  cg.add_edge(a, bb, d);
  cg.add_edge(bb, a, 0);  // minimum 1 cell
  nl::Netlist nl("c");
  nl::Builder b(nl);
  ControllerNetwork net = synthesize_controllers(b, cg, Protocol::Pulse, t);
  EXPECT_EQ(net.delay_units, 4u);
}

/// One odd consumer fed by 11 even producers: exceeds max arity. The
/// environment chain closes the loop (sink -> envA -> envB -> sources).
ControlGraph wide_fanin_cg() {
  ControlGraph cg;
  int sink = cg.add_bank("sink", false);
  int env_a = cg.add_bank("envA", true);
  int env_b = cg.add_bank("envB", false);
  cg.add_edge(sink, env_a, 0);
  cg.add_edge(env_a, env_b, 0);
  for (int i = 0; i < 11; ++i) {
    int src = cg.add_bank(cat("s", i), true);
    cg.add_edge(src, sink, 0);
    cg.add_edge(env_b, src, 0);
  }
  return cg;
}

class WideFanin : public ::testing::TestWithParam<Protocol> {};

TEST_P(WideFanin, BuildsCelemTreeAndConforms) {
  // The synthesis must reduce the wide join with a C-element tree (for the
  // level protocols also splitting mixed reset-value classes: envB- sees
  // 11 marked successor arcs plus its unmarked alternation arc under
  // semi-decoupled), and the network must still run and conform.
  Protocol proto = GetParam();
  ControlGraph cg = wide_fanin_cg();
  int sink = cg.find_bank("sink");
  nl::Netlist nl("c");
  nl::Builder b(nl);
  ControllerNetwork net =
      synthesize_controllers(b, cg, proto, Tech::generic90());
  nl.check();
  // The join tree must exist: more C-elements than the per-protocol base
  // count (one per bank for Pulse, two per bank for the level protocols).
  size_t celems = 0;
  for (nl::CellId c : nl.cells()) {
    if (nl.cell(c).kind == cell::Kind::CElem) ++celems;
  }
  size_t base = proto == Protocol::Pulse ? cg.num_banks() : 2 * cg.num_banks();
  EXPECT_GT(celems, base) << protocol_name(proto);
  sim::Simulator sim(nl, Tech::generic90());
  TraceRecorder rec(sim, cg, net.enables);
  sim.run_until(400000);
  EXPECT_GT(sim.toggles(net.enables[static_cast<size_t>(sink)]), 20u)
      << protocol_name(proto);
  EXPECT_EQ(check_conformance(cg, proto, rec.trace()), -1)
      << protocol_name(proto);
}

INSTANTIATE_TEST_SUITE_P(Protocols, WideFanin, ::testing::ValuesIn(kAll));

}  // namespace
}  // namespace desyn::ctl
