#!/usr/bin/env python3
"""Markdown link check: every relative link target in the given files must
exist on disk. External (http/https/mailto) links are not fetched — CI must
stay hermetic — and pure #anchors are skipped. Usage:

    python3 tools/check_md_links.py README.md docs/*.md

Exits nonzero listing every broken link as file:line: target.
"""
import re
import sys
from pathlib import Path

# Inline links [text](target); images ![alt](target) match the same way.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks must not contribute false links.
FENCE = re.compile(r"^(```|~~~)")


def check(path: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (path.parent / rel).exists():
                errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        p = Path(name)
        if not p.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check(p))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(argv) - 1} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
