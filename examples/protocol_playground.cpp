// Explore the de-synchronization protocols: build a control graph, print
// each protocol's marked graph, compare concurrency and throughput, and
// watch the gate-level pulse controllers run.
#include <cstdio>

#include "ctl/conformance.h"
#include "ctl/controller.h"
#include "pn/analysis.h"
#include "pn/mcr.h"
#include "sim/sim.h"

using namespace desyn;
using cell::Tech;
using ctl::ControlGraph;
using ctl::Protocol;

int main() {
  // A 6-bank M/S ring with one slow stage.
  ControlGraph cg;
  for (int i = 0; i < 6; ++i) cg.add_bank(cat("B", i), i % 2 == 0);
  Ps delays[6] = {50, 700, 50, 1400, 50, 700};
  for (int i = 0; i < 6; ++i) cg.add_edge(i, (i + 1) % 6, delays[i]);

  const Tech& t = Tech::generic90();
  constexpr auto& all = ctl::kAllProtocols;
  printf("protocol      live safe  states  period(analytic)\n");
  for (Protocol p : all) {
    Ps pw = p == Protocol::Pulse ? 90 : 0;
    pn::MarkedGraph mg = ctl::protocol_mg(cg, p, 55, pw);
    auto reach = pn::explore(mg);
    auto mcr = pn::max_cycle_ratio(mg);
    printf("%-14s %-4s %-4s %7llu %10.0fps\n", ctl::protocol_name(p),
           pn::is_live(mg) ? "yes" : "NO", pn::is_safe(mg) ? "yes" : "NO",
           static_cast<unsigned long long>(reach.states), mcr.ratio);
  }

  // Gate level: synthesize every protocol's controllers, record a trace,
  // and check it conforms to that protocol's marked graph.
  bool all_ok = true;
  for (Protocol p : all) {
    nl::Netlist nl("ctrl");
    nl::Builder b(nl);
    ctl::ControllerNetwork net = ctl::synthesize_controllers(b, cg, p, t);
    sim::Simulator sim(nl, t);
    ctl::TraceRecorder rec(sim, cg, net.enables);
    sim.run_until(30000);
    if (p == Protocol::Pulse) {
      printf("\ngate-level pulse trace (first 24 events):\n");
      size_t shown = 0;
      for (const ctl::BankEvent& ev : rec.trace()) {
        if (++shown > 24) break;
        printf("  %6lldps  %s%c\n", static_cast<long long>(ev.at),
               cg.bank(ev.bank).name.c_str(), ev.plus ? '+' : '-');
      }
    }
    long conf = ctl::check_conformance(cg, p, rec.trace());
    all_ok &= conf == -1;
    printf("%s%-15s gates: %4zu cells, %3zu delay lines, trace of %4zu "
           "events conforms: %s\n",
           p == Protocol::Pulse ? "" : "\n", ctl::protocol_name(p),
           net.cells.size(), net.delay_units, rec.trace().size(),
           conf == -1 ? "yes" : "NO");
  }
  return all_ok ? 0 : 1;
}
