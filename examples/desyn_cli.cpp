// desyn_cli — the flow as a command-line tool:
//
//   desyn_cli <input.v> <clock-net> <output.v> [margin] [strategy]
//
// Reads a structural-Verilog FF netlist (the subset write_verilog emits),
// desynchronizes it, writes the self-timed netlist, and prints the
// bank/edge report plus the analytic cycle-time prediction. `strategy` is
// one of prefix|perff|single (default prefix).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/desynchronizer.h"
#include "core/report.h"
#include "netlist/query.h"
#include "netlist/reader.h"
#include "netlist/writer.h"
#include "pn/mcr.h"
#include "sta/sta.h"

using namespace desyn;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <input.v> <clock-net> <output.v> [margin] "
                 "[prefix|perff|single]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream in(argv[1]);
    if (!in) fail("cannot open ", argv[1]);
    std::stringstream ss;
    ss << in.rdbuf();
    nl::Netlist ff = nl::read_verilog(ss.str());
    nl::NetId clock = ff.find_net(argv[2]);
    if (!clock.valid()) fail("no net named '", argv[2], "' in ", argv[1]);

    flow::DesyncOptions opt;
    if (argc > 4) opt.margin = std::stod(argv[4]);
    if (argc > 5) {
      std::string s = argv[5];
      opt.strategy = s == "perff"    ? flow::BankStrategy::PerFlipFlop
                     : s == "single" ? flow::BankStrategy::Single
                                     : flow::BankStrategy::Prefix;
    }

    const cell::Tech& tech = cell::Tech::generic90();
    sta::Sta sta(ff, tech);
    Ps sync_period = sta.min_clock_period().min_period;

    flow::DesyncResult dr = flow::desynchronize(ff, clock, tech, opt);
    std::ofstream out(argv[3]);
    if (!out) fail("cannot write ", argv[3]);
    nl::write_verilog(dr.netlist, out);

    std::printf("input : %s\n", nl::stats(ff, tech).to_string().c_str());
    std::printf("output: %s\n",
                nl::stats(dr.netlist, tech).to_string().c_str());
    std::printf("banks (%zu):\n", dr.cg.num_banks());
    for (size_t i = 0; i < dr.cg.num_banks(); ++i) {
      std::printf("  %-20s %s\n",
                  dr.cg.bank(static_cast<int>(i)).name.c_str(),
                  dr.cg.bank(static_cast<int>(i)).even ? "even" : "odd");
    }
    std::printf("edges (%zu):\n", dr.cg.edges().size());
    for (const auto& e : dr.cg.edges()) {
      std::printf("  %-20s -> %-20s matched %lldps\n",
                  dr.cg.bank(e.from).name.c_str(),
                  dr.cg.bank(e.to).name.c_str(),
                  static_cast<long long>(e.matched_delay));
    }
    auto mcr = pn::max_cycle_ratio(flow::timed_control_model(dr, tech));
    std::printf("sync STA min period : %lldps\n",
                static_cast<long long>(sync_period));
    std::printf("desync predicted    : %.0fps (max cycle ratio)\n", mcr.ratio);
    std::printf("wrote %s\n", argv[3]);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
