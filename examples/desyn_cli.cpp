// desyn_cli — the flow as a command-line tool.
//
// Single-design mode:
//
//   desyn_cli <input.v> <clock-net> <output.v> [margin] [strategy]
//             [--protocol lockstep|semi|fully|pulse] [--opt-jobs N]
//             [--cache-dir <dir>]
//
// Reads a structural-Verilog FF netlist (the subset write_verilog emits),
// desynchronizes it under the chosen handshake protocol, writes the
// self-timed netlist, and prints the bank/edge report plus the analytic
// cycle-time prediction. `strategy` is one of prefix[:N]|perff|single|
// auto[:B] (default prefix): prefix:N strips N trailing name segments,
// auto:B runs the MCR-guided partition optimizer with period budget B.
// --opt-jobs N scores the optimizer's candidate waves on N threads — the
// result is byte-identical for any N (deterministic reduction).
// --cache-dir keeps the staged flow engine's artifacts on disk, so an
// unchanged re-run is a pure cache hit and an edited design re-runs only
// the stages whose inputs changed (see docs/ARCHITECTURE.md).
//
// Sweep mode — the circuit x strategy x protocol x margin study over the
// built-in circuit suite:
//
//   desyn_cli sweep [--margins 1.0,1.1,1.3] [--protocol <p>|all]
//                   [--strategies prefix,perff,single,auto:1.05]
//                   [--rounds N] [--full-suite] [--jobs N] [--opt-jobs N]
//                   [--sim-jobs N] [--json <path>] [--stable]
//
// For every combination the tool desynchronizes the circuit, predicts the
// cycle time analytically (max cycle ratio of the timed control model) and
// measures it by gate-level simulation inside the flow-equivalence
// checker, which simultaneously proves the transformation correct. Exits
// nonzero if any combination fails flow equivalence.
//
// Each circuit x strategy x protocol x margin cell is an independent task;
// --jobs N runs them on N worker threads, and --sim-jobs N additionally
// shards each cell's event simulation by handshake domain (sim/domains.h).
// Results are reported in the same deterministic order regardless of either
// job count, so `--jobs 4 --sim-jobs 4` output is byte-identical to a
// serial run. --json writes a structured report
// (schema desyn-sweep-v2, documented in docs/PERF.md, with per-cell
// partition stats: bank count, controller cells, matched-delay cells);
// --stable omits the wall-clock fields from it so two runs of the same
// sweep diff cleanly.
//
// Monte-Carlo sweep mode — pass --mc-samples to switch the sweep from
// simulation to the analytic variation model (flow/mc.h): every cell is
// desynchronized and its hardware timed model is swept over N statistical
// samples by one batched Howard solve, reporting the period distribution
// (p50/p95/max), the worst setup-slack distribution and the zero-violation
// yield. No gate-level simulation runs, so the MC sweep covers the same
// matrix orders of magnitude faster:
//
//   desyn_cli sweep --mc-samples 256 [--mc-seed S] [--mc-sigma 0.05]
//                   [--mc-jobs N] [other sweep options]
//
// --mc-jobs N solves each cell's sample batch on N threads; reports are
// byte-identical for any --mc-jobs x --jobs combination (every draw is a
// pure function of its (seed, stream, sample) coordinates and the batch
// solver's blocks warm-start from cold anchors). --json writes schema
// desyn-mc-v1 instead of the sweep schema.
//
// Margin-optimizer mode — replace the uniform matched-delay margin with a
// per-destination-bank vector sized by the same Monte-Carlo model
// (flow::optimize_margins): shave every delay line to the minimum length
// with zero setup violations across all samples, re-run the flow at the
// back-mapped margins and report both analyses:
//
//   desyn_cli optimize-margins <input.v> <clock-net> [margin] [strategy]
//                              [--protocol <p>] [--mc-samples N]
//                              [--mc-seed S] [--mc-sigma X] [--mc-jobs N]
//                              [--json <path>] [--out <optimized.v>]
//   desyn_cli optimize-margins --circuit <suite-name> [margin] [strategy] ...
//
// Exits nonzero when the optimized design has more violation samples than
// the baseline (the optimizer's equal-yield contract).
//
// Server mode — the flow as a persistent service (protocol desyn-svc-v1,
// see src/svc/server.h):
//
//   desyn_cli serve --socket <path> [--threads N] [--capacity N]
//                   [--cache-dir <dir>] [--max-inflight N]
//                   [--io-timeout-ms N] [--max-request-bytes N]
//                   [--fault-spec <spec>]
//   desyn_cli submit <input.v> <clock-net> --socket <path> [margin]
//                    [strategy] [--protocol <p>] [--sim-jobs N]
//                    [--save <result.json>] [--retries N] [--timeout-ms N]
//
// `serve` runs until SIGINT/SIGTERM, sharing one flow engine across all
// clients: a re-submitted design is answered from the result cache
// byte-identically. The first signal drains gracefully (in-flight
// requests finish); a second signal cancels them (typed `cancelled`
// responses). --max-inflight bounds admitted-but-unserved connections
// (the excess get a typed `busy` response), --io-timeout-ms/
// --max-request-bytes bound what any one peer can pin, and --fault-spec
// arms a deterministic fault site (base/fault.h, docs/ROBUSTNESS.md) for
// robustness smoke tests. `submit` sends one design and prints the
// summary; --save writes the response's raw "result" object, which is
// byte-identical across cached and cold submissions (the CI smoke job
// cmp's two of them). --timeout-ms arms a per-request server deadline;
// --retries N re-submits on transient failures (connection loss, `busy`,
// `internal`) with exponential backoff + jitter — always safe, because
// submissions are content-addressed.
//
// Cache mode — offline inspection of a flow engine's disk tier:
//
//   desyn_cli cache stats|verify|scrub <dir>
//
// `stats` inventories the directory, `verify` additionally checks every
// entry's integrity digest (exit 1 when any is corrupt), `scrub` removes
// corrupt entries and orphan tmp files from dead writers.
//
// Lint mode — the static verifier (src/check, docs/LINT.md) over the
// desynchronized result: structural netlist checks, marked-graph
// re-extraction from the synthesized controllers, matched-delay coverage,
// handshake completeness. No simulation runs; exits 1 when any run has
// error-severity diagnostics:
//
//   desyn_cli lint <input.v> <clock-net> [margin] [strategy]
//                  [--protocol <p>|all] [--json <path>]
//   desyn_cli lint --suite [--full-suite] [margin] [strategy]
//                  [--protocol <p>|all] [--json <path>]
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/cli_args.h"
#include "base/fault.h"
#include "base/json.h"
#include "check/check.h"
#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "core/report.h"
#include "flow/engine.h"
#include "flow/mc.h"
#include "netlist/query.h"
#include "netlist/reader.h"
#include "netlist/writer.h"
#include "pn/mcr.h"
#include "sta/sta.h"
#include "svc/client.h"
#include "svc/server.h"
#include "verif/flow_equivalence.h"

#include <algorithm>
#include <atomic>
#include <chrono>

using namespace desyn;

namespace {

/// One circuit x strategy x protocol x margin cell of the sweep. Cells are
/// independent tasks; the vector order is the deterministic report order.
struct SweepCell {
  size_t suite_idx;
  size_t strategy_idx;
  ctl::Protocol protocol;
  double margin;
  Ps sync_period = 0;
  verif::FlowEqResult res;
  double wall_ms = 0;
  bool ok = false;
};

/// Structured sweep report (schema "desyn-sweep-v2", see docs/PERF.md).
/// With `stable` the wall-clock fields are omitted so two runs of the same
/// sweep — any job count — are byte-identical.
void write_sweep_json(const std::string& path,
                      const std::vector<circuits::Suite>& suite,
                      const std::vector<flow::PartitionSpec>& strategies,
                      const std::vector<SweepCell>& cells, int rounds,
                      int failures, bool stable, double total_ms) {
  std::ofstream out(path);
  if (!out) fail("cannot write ", path);
  char buf[256];
  out << "{\n  \"schema\": \"desyn-sweep-v2\",\n";
  out << "  \"rounds\": " << rounds << ",\n";
  out << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    const verif::FlowEqResult& r = c.res;
    out << "    {\"circuit\": \"" << json::escape(suite[c.suite_idx].name)
        << "\", \"strategy\": \""
        << json::escape(strategies[c.strategy_idx].label())
        << "\", \"protocol\": \"" << ctl::protocol_name(c.protocol) << "\",";
    std::snprintf(buf, sizeof buf, " \"margin\": %.4f,", c.margin);
    out << buf << "\n     \"banks\": " << r.banks
        << ", \"controller_cells\": " << r.controller_cells
        << ", \"delay_cells\": " << r.delay_cells << ",\n";
    out << "     \"sync_cells\": " << r.sync_cells
        << ", \"desync_cells\": " << r.desync_cells
        << ", \"registers\": " << r.registers_compared
        << ", \"captures\": " << r.captures_compared << ",\n";
    std::snprintf(buf, sizeof buf,
                  "     \"sync_period_ps\": %lld, \"predicted_period_ps\": "
                  "%.6f, \"measured_period_ps\": %.6f,\n",
                  static_cast<long long>(c.sync_period), r.predicted_period,
                  r.desync_period);
    out << buf;
    out << "     \"sync_setup_violations\": " << r.sync_setup_violations
        << ", \"desync_setup_violations\": " << r.desync_setup_violations
        << ", \"equivalent\": " << (r.equivalent ? "true" : "false")
        << ", \"ok\": " << (c.ok ? "true" : "false");
    if (!r.mismatch.empty()) {
      out << ",\n     \"mismatch\": \"" << json::escape(r.mismatch) << "\"";
    }
    if (!stable) {
      std::snprintf(buf, sizeof buf, ",\n     \"wall_ms\": %.3f", c.wall_ms);
      out << buf;
    }
    out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"failures\": " << failures;
  if (!stable) {
    std::snprintf(buf, sizeof buf, ",\n  \"total_wall_ms\": %.3f", total_ms);
    out << buf;
  }
  out << "\n}\n";
}

/// One cell of the Monte-Carlo sweep (--mc-samples): the analytic variation
/// report instead of a simulated flow-equivalence run.
struct McSweepCell {
  size_t suite_idx;
  size_t strategy_idx;
  ctl::Protocol protocol;
  double margin;
  flow::McReport rep;
  double wall_ms = 0;
  std::string error;  ///< nonempty when the flow threw; cell failed
};

/// One McReport as a JSON object body (shared by the desyn-mc-v1 sweep
/// report and the optimize-margins report).
std::string mc_report_json(const flow::McReport& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "\"samples\": %zu, \"mcr_arcs\": %zu, \"nominal_period_ps\": %.6f,\n"
      "     \"period_ps\": {\"p50\": %.6f, \"p95\": %.6f, \"min\": %.6f, "
      "\"max\": %.6f},\n"
      "     \"min_slack_ps\": {\"p50\": %.6f, \"p95\": %.6f, \"min\": %.6f, "
      "\"max\": %.6f},\n"
      "     \"violation_samples\": %zu, \"yield\": %.6f",
      r.samples, r.mcr_arcs, r.nominal_period, r.period.p50, r.period.p95,
      r.period.min, r.period.max, r.min_slack.p50, r.min_slack.p95,
      r.min_slack.min, r.min_slack.max, r.violation_samples, r.yield);
  return buf;
}

/// Structured MC sweep report (schema "desyn-mc-v1", see docs/PERF.md).
/// Deterministic for any --jobs / --mc-jobs combination; --stable omits
/// the wall-clock fields so two runs diff cleanly.
void write_mc_json(const std::string& path,
                   const std::vector<circuits::Suite>& suite,
                   const std::vector<flow::PartitionSpec>& strategies,
                   const std::vector<McSweepCell>& cells,
                   const flow::McOptions& mc, int failures, bool stable,
                   double total_ms) {
  std::ofstream out(path);
  if (!out) fail("cannot write ", path);
  char buf[256];
  out << "{\n  \"schema\": \"desyn-mc-v1\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"samples\": %zu, \"seed\": %llu, \"sigma\": %.6f,\n",
                mc.samples, static_cast<unsigned long long>(mc.seed),
                mc.sigma);
  out << buf;
  out << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const McSweepCell& c = cells[i];
    out << "    {\"circuit\": \"" << json::escape(suite[c.suite_idx].name)
        << "\", \"strategy\": \""
        << json::escape(strategies[c.strategy_idx].label())
        << "\", \"protocol\": \"" << ctl::protocol_name(c.protocol) << "\",";
    std::snprintf(buf, sizeof buf, " \"margin\": %.4f,", c.margin);
    out << buf << "\n     ";
    if (c.error.empty()) {
      out << mc_report_json(c.rep) << ", \"ok\": true";
    } else {
      out << "\"ok\": false, \"error\": \"" << json::escape(c.error) << "\"";
    }
    if (!stable) {
      std::snprintf(buf, sizeof buf, ",\n     \"wall_ms\": %.3f", c.wall_ms);
      out << buf;
    }
    out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"failures\": " << failures;
  if (!stable) {
    std::snprintf(buf, sizeof buf, ",\n  \"total_wall_ms\": %.3f", total_ms);
    out << buf;
  }
  out << "\n}\n";
}

/// The --mc-samples branch of `sweep`: every cell runs through the flow
/// engine's cached MC stage instead of the flow-equivalence checker.
int run_mc_sweep(const std::vector<circuits::Suite>& suite,
                 const std::vector<flow::PartitionSpec>& strategies,
                 const std::vector<ctl::Protocol>& protocols,
                 const std::vector<double>& margins,
                 const flow::McOptions& mc, int jobs, int opt_jobs,
                 const std::string& json_path, bool stable) {
  std::vector<McSweepCell> cells;
  for (size_t si = 0; si < suite.size(); ++si) {
    for (size_t st = 0; st < strategies.size(); ++st) {
      for (ctl::Protocol p : protocols) {
        for (double m : margins) cells.push_back({si, st, p, m, {}, 0.0, ""});
      }
    }
  }

  const cell::Tech& tech = cell::Tech::generic90();
  flow::Engine& engine = flow::Engine::process(tech);
  auto t0 = std::chrono::steady_clock::now();
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      McSweepCell& c = cells[i];
      const circuits::Suite& s = suite[c.suite_idx];
      auto start = std::chrono::steady_clock::now();
      flow::DesyncOptions opt;
      opt.strategy = strategies[c.strategy_idx];
      opt.margin = c.margin;
      opt.protocol = c.protocol;
      opt.opt_jobs = opt_jobs;
      try {
        c.rep = *engine.mc(s.circuit.netlist, s.circuit.clock, opt, mc);
      } catch (const std::exception& e) {
        c.error = e.what();  // recorded per cell, sweep continues
      }
      c.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    }
  };
  std::vector<std::thread> pool;
  jobs = std::min(jobs, static_cast<int>(cells.size()));
  for (int j = 1; j < jobs; ++j) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();
  double total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  printf("%-12s %-10s %-15s %-7s %10s %10s %10s %10s %10s %6s\n", "circuit",
         "strategy", "protocol", "margin", "nom(ps)", "p50(ps)", "p95(ps)",
         "max(ps)", "slackmin", "yield");
  int failures = 0;
  for (const McSweepCell& c : cells) {
    if (!c.error.empty()) {
      ++failures;
      printf("%-12s %-10s %-15s %-7.2f FAILED: %s\n",
             suite[c.suite_idx].name.c_str(),
             strategies[c.strategy_idx].label().c_str(),
             ctl::protocol_name(c.protocol), c.margin, c.error.c_str());
      continue;
    }
    printf("%-12s %-10s %-15s %-7.2f %10.0f %10.0f %10.0f %10.0f %10.0f "
           "%6.3f\n",
           suite[c.suite_idx].name.c_str(),
           strategies[c.strategy_idx].label().c_str(),
           ctl::protocol_name(c.protocol), c.margin, c.rep.nominal_period,
           c.rep.period.p50, c.rep.period.p95, c.rep.period.max,
           c.rep.min_slack.min, c.rep.yield);
  }
  printf("\n%d combination(s) failed (%zu samples each)\n", failures,
         mc.samples + 1);
  if (!json_path.empty()) {
    write_mc_json(json_path, suite, strategies, cells, mc, failures, stable,
                  total_ms);
  }
  return failures == 0 ? 0 : 1;
}

int run_sweep(int argc, char** argv) {
  std::vector<double> margins = {1.0, 1.1, 1.3};
  std::vector<ctl::Protocol> protocols(std::begin(ctl::kAllProtocols),
                                       std::end(ctl::kAllProtocols));
  std::vector<flow::PartitionSpec> strategies = {flow::PartitionSpec{}};
  int rounds = 25;
  int jobs = 1;
  int opt_jobs = 1;
  int sim_jobs = 1;
  bool full_suite = false;
  bool stable = false;
  bool mc_mode = false;
  flow::McOptions mc;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--margins") {
      margins = cli::parse_margins(cli::need_value(argc, argv, i, "--margins"));
    } else if (a == "--strategies") {
      strategies =
          cli::parse_strategies(cli::need_value(argc, argv, i, "--strategies"));
    } else if (a == "--protocol") {
      std::string v = cli::need_value(argc, argv, i, "--protocol");
      if (v != "all") protocols = {ctl::parse_protocol(v)};
    } else if (a == "--rounds") {
      rounds = cli::parse_count(cli::need_value(argc, argv, i, "--rounds"),
                                "--rounds value");
    } else if (a == "--jobs") {
      jobs = cli::parse_count(cli::need_value(argc, argv, i, "--jobs"),
                              "--jobs value");
    } else if (a == "--opt-jobs") {
      opt_jobs = cli::parse_count(cli::need_value(argc, argv, i, "--opt-jobs"),
                                  "--opt-jobs value");
    } else if (a == "--sim-jobs") {
      sim_jobs = cli::parse_count(cli::need_value(argc, argv, i, "--sim-jobs"),
                                  "--sim-jobs value");
    } else if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else if (a == "--stable") {
      stable = true;
    } else if (a == "--full-suite") {
      full_suite = true;
    } else if (a == "--mc-samples") {
      mc.samples = static_cast<size_t>(
          cli::parse_count(cli::need_value(argc, argv, i, "--mc-samples"),
                           "--mc-samples value"));
      mc_mode = true;
    } else if (a == "--mc-seed") {
      mc.seed = static_cast<uint64_t>(cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--mc-seed"), "--mc-seed value"));
    } else if (a == "--mc-sigma") {
      mc.sigma = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--mc-sigma"), "--mc-sigma value");
    } else if (a == "--mc-jobs") {
      mc.jobs = cli::parse_count(cli::need_value(argc, argv, i, "--mc-jobs"),
                                 "--mc-jobs value");
    } else {
      fail("unknown sweep option '", a, "'");
    }
  }

  // The compact mix keeps the sweep CI-friendly; --full-suite runs all of
  // circuits::scaling_suite() (the largest entries dominate the runtime).
  std::vector<circuits::Suite> suite;
  for (circuits::Suite& s : circuits::scaling_suite()) {
    if (full_suite || s.name == "pipe4x8" || s.name == "lfsr16" ||
        s.name == "counters4x8" || s.name == "crc32" || s.name == "fir8x12" ||
        s.name == "mesh6x6x2") {
      suite.push_back(std::move(s));
    }
  }

  if (mc_mode) {
    return run_mc_sweep(suite, strategies, protocols, margins, mc, jobs,
                        opt_jobs, json_path, stable);
  }

  const cell::Tech& tech = cell::Tech::generic90();

  // Deterministic task list; the STA minimum period per circuit is shared
  // by all of its cells, so compute it up front.
  std::vector<Ps> sync_periods;
  for (const circuits::Suite& s : suite) {
    sta::Sta sta(s.circuit.netlist, tech);
    sync_periods.push_back(sta.min_clock_period().min_period);
  }
  std::vector<SweepCell> cells;
  for (size_t si = 0; si < suite.size(); ++si) {
    for (size_t st = 0; st < strategies.size(); ++st) {
      for (ctl::Protocol p : protocols) {
        for (double m : margins) {
          cells.push_back({si, st, p, m, sync_periods[si], {}, 0.0, false});
        }
      }
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      SweepCell& c = cells[i];
      const circuits::Suite& s = suite[c.suite_idx];
      auto start = std::chrono::steady_clock::now();
      verif::FlowEqOptions opt;
      opt.rounds = rounds;
      opt.desync.strategy = strategies[c.strategy_idx];
      opt.desync.margin = c.margin;
      opt.desync.protocol = c.protocol;
      opt.desync.opt_jobs = opt_jobs;
      opt.desync.sim_jobs = sim_jobs;
      try {
        c.res = verif::check_flow_equivalence(
            s.circuit.netlist, s.circuit.clock, verif::random_stimulus(17),
            tech, opt);
      } catch (const std::exception& e) {
        c.res.mismatch = e.what();  // recorded per cell, sweep continues
      }
      c.ok = c.res.equivalent && c.res.desync_setup_violations == 0;
      c.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    }
  };
  std::vector<std::thread> pool;
  jobs = std::min(jobs, static_cast<int>(cells.size()));
  for (int j = 1; j < jobs; ++j) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();
  double total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  printf("%-12s %-10s %-15s %-7s %6s %9s %10s %10s %8s %5s\n", "circuit",
         "strategy", "protocol", "margin", "banks", "sync(ps)", "pred(ps)",
         "meas(ps)", "meas/pred", "eq");
  int failures = 0;
  for (const SweepCell& c : cells) {
    if (!c.ok) ++failures;
    printf("%-12s %-10s %-15s %-7.2f %6zu %9lld %10.0f %10.0f %8.2f %5s\n",
           suite[c.suite_idx].name.c_str(),
           strategies[c.strategy_idx].label().c_str(),
           ctl::protocol_name(c.protocol), c.margin, c.res.banks,
           static_cast<long long>(c.sync_period), c.res.predicted_period,
           c.res.desync_period,
           c.res.predicted_period > 0
               ? c.res.desync_period / c.res.predicted_period
               : 0.0,
           c.ok ? "yes" : "NO");
    if (!c.ok && !c.res.mismatch.empty()) {
      printf("    ^ %s\n", c.res.mismatch.c_str());
    }
  }
  printf("\n%d combination(s) failed\n", failures);
  if (!json_path.empty()) {
    write_sweep_json(json_path, suite, strategies, cells, rounds, failures,
                     stable, total_ms);
  }
  return failures == 0 ? 0 : 1;
}

volatile std::sig_atomic_t g_stop = 0;
void stop_handler(int) { g_stop = g_stop < 2 ? g_stop + 1 : 2; }

int run_serve(int argc, char** argv) {
  svc::ServerOptions opt;
  std::string fault_spec;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--socket") {
      opt.socket_path = cli::need_value(argc, argv, i, "--socket");
    } else if (a == "--threads") {
      opt.threads = cli::parse_count(
          cli::need_value(argc, argv, i, "--threads"), "--threads value");
    } else if (a == "--capacity") {
      opt.capacity = static_cast<size_t>(cli::parse_count(
          cli::need_value(argc, argv, i, "--capacity"), "--capacity value"));
    } else if (a == "--cache-dir") {
      opt.cache_dir = cli::need_value(argc, argv, i, "--cache-dir");
    } else if (a == "--max-inflight") {
      opt.max_pending =
          cli::parse_count(cli::need_value(argc, argv, i, "--max-inflight"),
                           "--max-inflight value");
    } else if (a == "--io-timeout-ms") {
      opt.io_timeout_ms = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--io-timeout-ms"),
          "--io-timeout-ms value");
    } else if (a == "--max-request-bytes") {
      opt.max_request_bytes = static_cast<size_t>(cli::parse_count(
          cli::need_value(argc, argv, i, "--max-request-bytes"),
          "--max-request-bytes value"));
    } else if (a == "--fault-spec") {
      fault_spec = cli::need_value(argc, argv, i, "--fault-spec");
    } else {
      fail("unknown serve option '", a, "'");
    }
  }
  if (opt.socket_path.empty()) fail("serve needs --socket <path>");
  if (!fault_spec.empty()) {
    fault::arm(fault::Spec::parse(fault_spec));
    std::printf("fault spec armed: %s\n",
                fault::Spec::parse(fault_spec).to_string().c_str());
  }

  svc::Server server(cell::Tech::generic90(), opt);
  server.start();
  std::printf("desyn server listening on %s (%d threads%s%s)\n",
              opt.socket_path.c_str(), opt.threads,
              opt.cache_dir.empty() ? "" : ", cache ",
              opt.cache_dir.c_str());
  std::fflush(stdout);  // backgrounded CI jobs grep for the ready line

  std::signal(SIGINT, stop_handler);
  std::signal(SIGTERM, stop_handler);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Graceful drain: stop() lets in-flight requests answer. A second
  // signal during the drain escalates — cancel the in-flight requests so
  // they answer `cancelled` now and the drain stays bounded.
  std::printf("draining (signal again to cancel in-flight requests)\n");
  std::fflush(stdout);
  std::atomic<bool> drained{false};
  std::thread escalator([&server, &drained] {
    while (!drained.load(std::memory_order_acquire)) {
      if (g_stop >= 2) {
        server.cancel_inflight();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  server.stop();
  drained.store(true, std::memory_order_release);
  escalator.join();

  flow::StageCounters c = server.engine().counters();
  std::printf("served %zu submissions (%zu from the result cache)\n", c.runs,
              c.result_hits);
  return 0;
}

int run_submit(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string socket_path, save_path, protocol = "pulse";
  int sim_jobs = 1, retries = 0, timeout_ms = 0;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--socket") {
      socket_path = cli::need_value(argc, argv, i, "--socket");
    } else if (a == "--save") {
      save_path = cli::need_value(argc, argv, i, "--save");
    } else if (a == "--protocol") {
      protocol = cli::need_value(argc, argv, i, "--protocol");
    } else if (a == "--sim-jobs") {
      sim_jobs = cli::parse_count(cli::need_value(argc, argv, i, "--sim-jobs"),
                                  "--sim-jobs value");
    } else if (a == "--retries") {
      retries = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--retries"), "--retries value");
    } else if (a == "--timeout-ms") {
      timeout_ms = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--timeout-ms"),
          "--timeout-ms value");
    } else {
      pos.push_back(a);
    }
  }
  if (pos.size() < 2 || socket_path.empty()) {
    fail("submit needs <input.v> <clock-net> --socket <path>");
  }
  double margin = pos.size() > 2 ? cli::parse_margin(pos[2]) : 1.1;
  std::string strategy = pos.size() > 3 ? pos[3] : "prefix";

  std::ifstream in(pos[0]);
  if (!in) fail("cannot open ", pos[0]);
  std::stringstream ss;
  ss << in.rdbuf();

  svc::RetryOptions retry;
  retry.retries = retries;
  // The socket deadline covers the server-side budget plus slack for the
  // round trip; no request deadline means no client-side one either.
  retry.io_timeout_ms = timeout_ms > 0 ? timeout_ms + 10000 : 0;
  std::string response = svc::submit_with_retry(
      socket_path,
      svc::make_request(ss.str(), pos[1], strategy, margin, protocol,
                        sim_jobs, timeout_ms),
      retry);
  std::string result = svc::extract_result(response);  // throws on error

  json::Value v = json::parse(response);
  const json::Value* r = v.get("result");
  std::printf("circuit : %s (%s, %s, margin %.2f)\n",
              r->get_string("circuit", "?").c_str(),
              r->get_string("strategy", "?").c_str(),
              r->get_string("protocol", "?").c_str(),
              r->get_number("margin", 0));
  std::printf("cached  : %s\n", v.get_bool("cached", false) ? "yes" : "no");
  std::printf("banks   : %.0f (%.0f controller cells, %.0f delay cells)\n",
              r->get_number("banks", 0), r->get_number("controller_cells", 0),
              r->get_number("delay_cells", 0));
  std::printf("cells   : %.0f -> %.0f\n", r->get_number("sync_cells", 0),
              r->get_number("desync_cells", 0));
  std::printf("predicted period: %.0fps\n",
              r->get_number("predicted_period_ps", 0));
  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) fail("cannot write ", save_path);
    out << result << "\n";
    std::printf("saved result to %s\n", save_path.c_str());
  }
  return 0;
}

/// `desyn_cli lint` — run the static verifier (src/check) on the
/// desynchronized result instead of writing it out. One line per clean
/// run, full diagnostics otherwise; --json writes the desyn-lint-v1
/// report; exit 1 when any run has errors.
int run_lint(int argc, char** argv) {
  std::vector<std::string> pos;
  std::vector<ctl::Protocol> protocols = {ctl::Protocol::Pulse};
  bool suite = false, full_suite = false;
  double margin = 1.1;
  flow::PartitionSpec strategy;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--protocol") {
      std::string v = cli::need_value(argc, argv, i, "--protocol");
      if (v == "all") {
        protocols.assign(std::begin(ctl::kAllProtocols),
                         std::end(ctl::kAllProtocols));
      } else {
        protocols = {ctl::parse_protocol(v)};
      }
    } else if (a == "--suite") {
      suite = true;
    } else if (a == "--full-suite") {
      suite = true;
      full_suite = true;
    } else if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else {
      pos.push_back(a);
    }
  }

  // The work list: (name, netlist, clock) triples from the suite or the
  // single input file.
  std::vector<circuits::Suite> owned;
  std::vector<std::pair<std::string, circuits::Circuit*>> designs;
  if (suite) {
    for (circuits::Suite& s : circuits::scaling_suite()) {
      if (full_suite || s.name == "pipe4x8" || s.name == "lfsr16" ||
          s.name == "counters4x8" || s.name == "crc32" ||
          s.name == "fir8x12" || s.name == "mesh6x6x2") {
        owned.push_back(std::move(s));
      }
    }
    if (pos.size() > 0) margin = cli::parse_margin(pos[0]);
    if (pos.size() > 1) strategy = flow::PartitionSpec::parse(pos[1]);
    for (circuits::Suite& s : owned) designs.push_back({s.name, &s.circuit});
  } else {
    if (pos.size() < 2) {
      fail("lint needs <input.v> <clock-net> (or --suite); see usage");
    }
    std::ifstream in(pos[0]);
    if (!in) fail("cannot open ", pos[0]);
    std::stringstream ss;
    ss << in.rdbuf();
    owned.push_back({pos[0], {nl::read_verilog(ss.str(), pos[0]), {}}});
    owned.back().circuit.clock = owned.back().circuit.netlist.find_net(pos[1]);
    if (!owned.back().circuit.clock.valid()) {
      fail("no net named '", pos[1], "' in ", pos[0]);
    }
    if (pos.size() > 2) margin = cli::parse_margin(pos[2]);
    if (pos.size() > 3) strategy = flow::PartitionSpec::parse(pos[3]);
    designs.push_back({owned.back().circuit.netlist.name(),
                       &owned.back().circuit});
  }

  const cell::Tech& tech = cell::Tech::generic90();
  flow::Engine& engine = flow::Engine::process(tech);
  size_t runs = 0, error_runs = 0;
  std::string json = "{\"schema\": \"desyn-lint-v1\", \"runs\": [";
  for (auto& [name, c] : designs) {
    for (ctl::Protocol p : protocols) {
      flow::DesyncOptions opt;
      opt.margin = margin;
      opt.strategy = strategy;
      opt.protocol = p;
      std::shared_ptr<const check::LintReport> rep =
          engine.lint(c->netlist, c->clock, opt);
      std::string label = cat(name, "/", ctl::protocol_name(p));
      std::fputs(check::render_text(*rep, label).c_str(), stdout);
      if (runs) json += ", ";
      json += check::render_json(*rep, name, p, margin);
      ++runs;
      if (rep->errors() > 0) ++error_runs;
    }
  }
  json += "]}";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) fail("cannot write ", json_path);
    out << json << "\n";
  }
  std::printf("lint: %zu run(s), %zu with errors\n", runs, error_runs);
  return error_runs ? 1 : 0;
}

/// `desyn_cli optimize-margins` — run flow::optimize_margins on one design
/// (an input file or a named suite circuit) and report the per-bank margin
/// vector, the delay-line area recovered and both Monte-Carlo analyses.
/// Exits 1 when the optimized design violates in more samples than the
/// baseline (the optimizer's equal-yield contract).
int run_optimize_margins(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string circuit_name, json_path, out_path;
  ctl::Protocol protocol = ctl::Protocol::Pulse;
  flow::McOptions mc;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--protocol") {
      protocol =
          ctl::parse_protocol(cli::need_value(argc, argv, i, "--protocol"));
    } else if (a == "--circuit") {
      circuit_name = cli::need_value(argc, argv, i, "--circuit");
    } else if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else if (a == "--out") {
      out_path = cli::need_value(argc, argv, i, "--out");
    } else if (a == "--mc-samples") {
      mc.samples = static_cast<size_t>(
          cli::parse_count(cli::need_value(argc, argv, i, "--mc-samples"),
                           "--mc-samples value"));
    } else if (a == "--mc-seed") {
      mc.seed = static_cast<uint64_t>(cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--mc-seed"), "--mc-seed value"));
    } else if (a == "--mc-sigma") {
      mc.sigma = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--mc-sigma"), "--mc-sigma value");
    } else if (a == "--mc-jobs") {
      mc.jobs = cli::parse_count(cli::need_value(argc, argv, i, "--mc-jobs"),
                                 "--mc-jobs value");
    } else {
      pos.push_back(a);
    }
  }

  // The design: a named scaling-suite circuit or a Verilog file + clock.
  circuits::Circuit circuit{nl::Netlist("design"), {}};
  std::string name;
  size_t opt_pos = 0;  // index of the optional [margin] positional
  if (!circuit_name.empty()) {
    bool found = false;
    for (circuits::Suite& s : circuits::scaling_suite()) {
      if (s.name == circuit_name) {
        circuit = std::move(s.circuit);
        name = s.name;
        found = true;
        break;
      }
    }
    if (!found) fail("no suite circuit named '", circuit_name, "'");
  } else {
    if (pos.size() < 2) {
      fail("optimize-margins needs <input.v> <clock-net> (or --circuit "
           "<suite-name>); see usage");
    }
    std::ifstream in(pos[0]);
    if (!in) fail("cannot open ", pos[0]);
    std::stringstream ss;
    ss << in.rdbuf();
    circuit.netlist = nl::read_verilog(ss.str(), pos[0]);
    circuit.clock = circuit.netlist.find_net(pos[1]);
    if (!circuit.clock.valid()) {
      fail("no net named '", pos[1], "' in ", pos[0]);
    }
    name = circuit.netlist.name();
    opt_pos = 2;
  }

  flow::DesyncOptions opt;
  opt.protocol = protocol;
  if (pos.size() > opt_pos) opt.margin = cli::parse_margin(pos[opt_pos]);
  if (pos.size() > opt_pos + 1) {
    opt.strategy = flow::PartitionSpec::parse(pos[opt_pos + 1]);
  }

  const cell::Tech& tech = cell::Tech::generic90();
  flow::MarginOptResult res =
      flow::optimize_margins(circuit.netlist, circuit.clock, tech, opt, mc);

  std::printf("circuit : %s (%s, %s, margin %.2f, %zu+%zu samples)\n",
              name.c_str(), opt.strategy.label().c_str(),
              ctl::protocol_name(protocol), opt.margin,
              res.baseline.corner_samples, mc.samples);
  std::printf("banks shaved    : %zu of %zu\n", res.banks_shaved,
              res.margins.size());
  std::printf("delay cells     : %zu -> %zu (%.1f%% recovered)\n",
              res.delay_cells_before, res.delay_cells_after,
              res.delay_cells_before
                  ? 100.0 *
                        static_cast<double>(res.delay_cells_before -
                                            res.delay_cells_after) /
                        static_cast<double>(res.delay_cells_before)
                  : 0.0);
  auto print_report = [](const char* label, const flow::McReport& r) {
    std::printf("%s: nominal %.0fps, p50 %.0fps, p95 %.0fps, max %.0fps, "
                "worst slack %.0fps, yield %.3f (%zu violating)\n",
                label, r.nominal_period, r.period.p50, r.period.p95,
                r.period.max, r.min_slack.min, r.yield, r.violation_samples);
  };
  print_report("baseline ", res.baseline);
  print_report("optimized", res.optimized);
  for (size_t b = 0; b < res.margins.size(); ++b) {
    if (res.margins[b] > 0) {
      std::printf("  bank %-3zu margin %.2f -> %.4f\n", b, opt.margin,
                  res.margins[b]);
    }
  }

  if (!out_path.empty()) {
    flow::DesyncOptions opt2 = opt;
    opt2.margins = res.margins;
    flow::DesyncResult dr =
        flow::desynchronize(circuit.netlist, circuit.clock, tech, opt2);
    std::ofstream out(out_path);
    if (!out) fail("cannot write ", out_path);
    nl::write_verilog(dr.netlist, out);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) fail("cannot write ", json_path);
    char buf[128];
    out << "{\n  \"schema\": \"desyn-margins-v1\",\n";
    out << "  \"circuit\": \"" << json::escape(name) << "\", \"strategy\": \""
        << json::escape(opt.strategy.label()) << "\", \"protocol\": \""
        << ctl::protocol_name(protocol) << "\",";
    std::snprintf(buf, sizeof buf, " \"margin\": %.4f,\n", opt.margin);
    out << buf;
    out << "  \"banks_shaved\": " << res.banks_shaved
        << ", \"delay_cells_before\": " << res.delay_cells_before
        << ", \"delay_cells_after\": " << res.delay_cells_after << ",\n";
    out << "  \"margins\": [";
    for (size_t b = 0; b < res.margins.size(); ++b) {
      std::snprintf(buf, sizeof buf, "%s%.6f", b ? ", " : "",
                    res.margins[b]);
      out << buf;
    }
    out << "],\n";
    out << "  \"baseline\": {" << mc_report_json(res.baseline) << "},\n";
    out << "  \"optimized\": {" << mc_report_json(res.optimized) << "}\n";
    out << "}\n";
  }

  // The equal-yield contract is the pass/fail line.
  return res.optimized.violation_samples <= res.baseline.violation_samples
             ? 0
             : 1;
}

/// `desyn_cli cache stats|verify|scrub <dir>` — offline inspection and
/// repair of a flow engine's disk tier (flow/artifact.h free functions).
int run_cache(int argc, char** argv) {
  std::vector<std::string> pos;
  for (int i = 2; i < argc; ++i) pos.emplace_back(argv[i]);
  if (pos.size() != 2 ||
      (pos[0] != "stats" && pos[0] != "verify" && pos[0] != "scrub")) {
    fail("usage: desyn_cli cache stats|verify|scrub <dir>");
  }
  const std::string& mode = pos[0];
  const std::string& dir = pos[1];

  if (mode == "scrub") {
    flow::ScrubResult r = flow::scrub_cache_dir(dir);
    flow::CacheScan after = flow::scan_cache_dir(dir, /*verify=*/false);
    std::printf("scrubbed %s: removed %zu corrupt entr%s, %zu orphan tmp "
                "file%s; %zu entr%s remain\n",
                dir.c_str(), r.corrupt_removed,
                r.corrupt_removed == 1 ? "y" : "ies", r.tmp_removed,
                r.tmp_removed == 1 ? "" : "s", after.entries,
                after.entries == 1 ? "y" : "ies");
    return 0;
  }

  const bool verify = mode == "verify";
  flow::CacheScan scan = flow::scan_cache_dir(dir, verify);
  std::printf("cache dir : %s\n", dir.c_str());
  std::printf("entries   : %zu (%llu bytes)\n", scan.entries,
              static_cast<unsigned long long>(scan.bytes));
  for (const auto& [kind, count] : scan.kinds) {
    std::printf("  %-9s : %zu\n", kind.c_str(), count);
  }
  std::printf("tmp files : %zu (%zu orphaned)\n", scan.tmp_total,
              scan.tmp_orphans);
  if (verify) {
    std::printf("corrupt   : %zu\n", scan.corrupt);
    for (const std::string& p : scan.corrupt_paths) {
      std::printf("  %s\n", p.c_str());
    }
    if (scan.corrupt > 0) return 1;  // `verify` is a CI gate
  }
  return 0;
}

int run_single(int argc, char** argv) {
  // Positional arguments with optional flags anywhere after them.
  std::vector<std::string> pos;
  ctl::Protocol protocol = ctl::Protocol::Pulse;
  int opt_jobs = 1;
  std::string cache_dir;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--protocol") {
      protocol =
          ctl::parse_protocol(cli::need_value(argc, argv, i, "--protocol"));
    } else if (a == "--opt-jobs") {
      opt_jobs = cli::parse_count(
          cli::need_value(argc, argv, i, "--opt-jobs"), "--opt-jobs value");
    } else if (a == "--cache-dir") {
      cache_dir = cli::need_value(argc, argv, i, "--cache-dir");
    } else {
      pos.push_back(a);
    }
  }
  if (pos.size() < 3) {
    std::fprintf(stderr,
                 "usage: desyn_cli <input.v> <clock-net> <output.v> [margin] "
                 "[prefix[:N]|perff|single|auto[:B]] "
                 "[--protocol lockstep|semi|fully|pulse] [--opt-jobs N] "
                 "[--cache-dir <dir>]\n"
                 "       desyn_cli sweep [--margins 1.0,1.1,1.3] "
                 "[--protocol <p>|all] "
                 "[--strategies prefix,perff,single,auto:1.05]\n"
                 "                 [--rounds N] [--full-suite] [--jobs N] "
                 "[--opt-jobs N] [--sim-jobs N] [--json <path>] [--stable]\n"
                 "                 [--mc-samples N [--mc-seed S] "
                 "[--mc-sigma X] [--mc-jobs N]]  (analytic MC mode)\n"
                 "       desyn_cli optimize-margins <input.v> <clock-net> "
                 "[margin] [strategy] [--protocol <p>]\n"
                 "                 [--mc-samples N] [--mc-seed S] "
                 "[--mc-sigma X] [--mc-jobs N] [--json <path>] "
                 "[--out <file.v>]\n"
                 "       desyn_cli optimize-margins --circuit <suite-name> "
                 "[margin] [strategy] [...]\n"
                 "       desyn_cli serve --socket <path> [--threads N] "
                 "[--capacity N] [--cache-dir <dir>] [--max-inflight N]\n"
                 "                 [--io-timeout-ms N] "
                 "[--max-request-bytes N] [--fault-spec <spec>]\n"
                 "       desyn_cli submit <input.v> <clock-net> --socket "
                 "<path> [margin] [strategy] [--protocol <p>] "
                 "[--sim-jobs N]\n"
                 "                 [--save <result.json>] [--retries N] "
                 "[--timeout-ms N]\n"
                 "       desyn_cli cache stats|verify|scrub <dir>\n"
                 "       desyn_cli lint <input.v> <clock-net> [margin] "
                 "[strategy] [--protocol <p>|all] [--json <path>]\n"
                 "       desyn_cli lint --suite [--full-suite] [margin] "
                 "[strategy] [--protocol <p>|all] [--json <path>]\n");
    return 2;
  }
  std::ifstream in(pos[0]);
  if (!in) fail("cannot open ", pos[0]);
  std::stringstream ss;
  ss << in.rdbuf();
  nl::Netlist ff = nl::read_verilog(ss.str(), pos[0]);
  nl::NetId clock = ff.find_net(pos[1]);
  if (!clock.valid()) fail("no net named '", pos[1], "' in ", pos[0]);

  flow::DesyncOptions opt;
  opt.protocol = protocol;
  opt.opt_jobs = opt_jobs;
  if (pos.size() > 3) opt.margin = cli::parse_margin(pos[3]);
  if (pos.size() > 4) opt.strategy = flow::PartitionSpec::parse(pos[4]);

  const cell::Tech& tech = cell::Tech::generic90();
  sta::Sta sta(ff, tech);
  Ps sync_period = sta.min_clock_period().min_period;

  // With --cache-dir the flow runs through a disk-backed engine: stages of
  // a previously-seen design are loaded instead of recomputed.
  std::unique_ptr<flow::Engine> engine;
  if (!cache_dir.empty()) {
    engine = std::make_unique<flow::Engine>(
        tech, flow::EngineOptions{96, cache_dir});
  }
  flow::DesyncResult dr = engine
                              ? *engine->desynchronize(ff, clock, opt)
                              : flow::desynchronize(ff, clock, tech, opt);
  std::ofstream out(pos[2]);
  if (!out) fail("cannot write ", pos[2]);
  nl::write_verilog(dr.netlist, out);

  std::printf("protocol: %s\n", ctl::protocol_name(opt.protocol));
  std::printf("strategy: %s (%zu storage groups)\n",
              opt.strategy.label().c_str(), dr.partition.num_groups());
  std::printf("input : %s\n", nl::stats(ff, tech).to_string().c_str());
  std::printf("output: %s\n", nl::stats(dr.netlist, tech).to_string().c_str());
  std::printf("banks (%zu):\n", dr.cg.num_banks());
  for (size_t i = 0; i < dr.cg.num_banks(); ++i) {
    std::printf("  %-20s %s\n", dr.cg.bank(static_cast<int>(i)).name.c_str(),
                dr.cg.bank(static_cast<int>(i)).even ? "even" : "odd");
  }
  std::printf("edges (%zu):\n", dr.cg.edges().size());
  for (const auto& e : dr.cg.edges()) {
    std::printf("  %-20s -> %-20s matched %lldps\n",
                dr.cg.bank(e.from).name.c_str(),
                dr.cg.bank(e.to).name.c_str(),
                static_cast<long long>(e.matched_delay));
  }
  auto mcr = pn::max_cycle_ratio(flow::timed_control_model(dr, tech));
  std::printf("sync STA min period : %lldps\n",
              static_cast<long long>(sync_period));
  std::printf("desync predicted    : %.0fps (max cycle ratio)\n", mcr.ratio);
  if (engine) {
    flow::ArtifactStore::Stats s = engine->store_stats();
    std::printf("cache: %zu memory hits, %zu disk hits, %zu misses (%s)\n",
                s.hits, s.disk_hits, s.misses, cache_dir.c_str());
  }
  std::printf("wrote %s\n", pos[2].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::string(argv[1]) == "sweep") {
      return run_sweep(argc, argv);
    }
    if (argc > 1 && std::string(argv[1]) == "serve") {
      return run_serve(argc, argv);
    }
    if (argc > 1 && std::string(argv[1]) == "submit") {
      return run_submit(argc, argv);
    }
    if (argc > 1 && std::string(argv[1]) == "cache") {
      return run_cache(argc, argv);
    }
    if (argc > 1 && std::string(argv[1]) == "lint") {
      return run_lint(argc, argv);
    }
    if (argc > 1 && std::string(argv[1]) == "optimize-margins") {
      return run_optimize_margins(argc, argv);
    }
    return run_single(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
