# End-to-end CLI smoke test driver (run via cmake -P):
#   1. quickstart writes quickstart_sync.v (a clocked FF netlist)
#   2. desyn_cli reads it, desynchronizes, and writes cli_out.v
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(COMMAND ${QUICKSTART}
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/quickstart_sync.v)
  message(FATAL_ERROR "quickstart did not write quickstart_sync.v")
endif()

execute_process(COMMAND ${CLI} quickstart_sync.v clk cli_out.v
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/cli_out.v)
  message(FATAL_ERROR "desyn_cli did not write cli_out.v")
endif()
