# End-to-end CLI smoke test driver (run via cmake -P):
#   1. quickstart writes quickstart_sync.v (a clocked FF netlist)
#   2. desyn_cli reads it, desynchronizes, and writes cli_out.v
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(COMMAND ${QUICKSTART}
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/quickstart_sync.v)
  message(FATAL_ERROR "quickstart did not write quickstart_sync.v")
endif()

execute_process(COMMAND ${CLI} quickstart_sync.v clk cli_out.v
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/cli_out.v)
  message(FATAL_ERROR "desyn_cli did not write cli_out.v")
endif()

# 3. the same design under a level-enable protocol
execute_process(COMMAND ${CLI} quickstart_sync.v clk cli_fully.v
    --protocol fully
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli --protocol fully failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/cli_fully.v)
  message(FATAL_ERROR "desyn_cli did not write cli_fully.v")
endif()

# 4. the protocol x circuit x margin sweep (compact smoke configuration);
#    nonzero exit means a combination failed flow equivalence.
execute_process(COMMAND ${CLI} sweep --margins 1.1 --rounds 15
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli sweep failed with exit code ${rc}")
endif()

# 5. the strategy axis, including the MCR-guided partition optimizer
#    (auto:B); two worker threads exercise the parallel path.
execute_process(COMMAND ${CLI} sweep --margins 1.1 --rounds 10
    --protocol semi --strategies perff,auto:1.05 --jobs 2
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli sweep --strategies failed with exit code ${rc}")
endif()
