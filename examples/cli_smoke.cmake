# End-to-end CLI smoke test driver (run via cmake -P):
#   1. quickstart writes quickstart_sync.v (a clocked FF netlist)
#   2. desyn_cli reads it, desynchronizes, and writes cli_out.v
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(COMMAND ${QUICKSTART}
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/quickstart_sync.v)
  message(FATAL_ERROR "quickstart did not write quickstart_sync.v")
endif()

execute_process(COMMAND ${CLI} quickstart_sync.v clk cli_out.v
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/cli_out.v)
  message(FATAL_ERROR "desyn_cli did not write cli_out.v")
endif()

# 3. the same design under a level-enable protocol
execute_process(COMMAND ${CLI} quickstart_sync.v clk cli_fully.v
    --protocol fully
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli --protocol fully failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/cli_fully.v)
  message(FATAL_ERROR "desyn_cli did not write cli_fully.v")
endif()

# 4. the protocol x circuit x margin sweep (compact smoke configuration);
#    nonzero exit means a combination failed flow equivalence.
execute_process(COMMAND ${CLI} sweep --margins 1.1 --rounds 15
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli sweep failed with exit code ${rc}")
endif()

# 5. the strategy axis, including the MCR-guided partition optimizer
#    (auto:B); two worker threads exercise the parallel path.
execute_process(COMMAND ${CLI} sweep --margins 1.1 --rounds 10
    --protocol semi --strategies perff,auto:1.05 --jobs 2
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli sweep --strategies failed with exit code ${rc}")
endif()

# 6. the analytic Monte-Carlo sweep: no simulation, and the JSON report is
#    byte-identical for any --jobs x --mc-jobs combination.
execute_process(COMMAND ${CLI} sweep --margins 1.1 --protocol pulse
    --mc-samples 32 --mc-seed 3 --stable --json mc_serial.json
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli sweep --mc-samples failed with exit code ${rc}")
endif()
execute_process(COMMAND ${CLI} sweep --margins 1.1 --protocol pulse
    --mc-samples 32 --mc-seed 3 --stable --json mc_parallel.json
    --jobs 2 --mc-jobs 4
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel MC sweep failed with exit code ${rc}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORKDIR}/mc_serial.json ${WORKDIR}/mc_parallel.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "MC sweep JSON differs across job counts")
endif()

# 7. the margin optimizer on the quickstart design (file-input path):
#    exits nonzero if the optimized design yields worse than the baseline.
execute_process(COMMAND ${CLI} optimize-margins quickstart_sync.v clk 1.3
    --mc-samples 32 --json margins.json --out cli_margins.v
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "desyn_cli optimize-margins failed with exit code ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/cli_margins.v)
  message(FATAL_ERROR "optimize-margins did not write cli_margins.v")
endif()
