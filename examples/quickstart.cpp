// Quickstart: take a small synchronous circuit through the whole flow.
//
//   1. build (or read) a flip-flop netlist
//   2. desynchronize() — latches + controllers + matched delays
//   3. verify flow equivalence against the clocked reference
//   4. inspect the results (Verilog, DOT, VCD)
#include <cstdio>
#include <fstream>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "netlist/query.h"
#include "netlist/writer.h"
#include "sim/vcd.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

int main() {
  const Tech& tech = Tech::generic90();

  // 1. A 4-stage, 8-bit synchronous pipeline.
  circuits::Circuit c = circuits::pipeline(4, 8, 2);
  printf("synchronous netlist: %s\n",
         nl::stats(c.netlist, tech).to_string().c_str());

  // 2. De-synchronize: replace the clock with handshake controllers.
  flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, tech);
  printf("desynchronized:      %s\n",
         nl::stats(dr.netlist, tech).to_string().c_str());
  printf("control banks: %zu, matched-delay cells: %zu\n",
         dr.cg.num_banks(), dr.ctrl.delay_units);

  // 3. Flow equivalence: every register stores the same value stream.
  verif::FlowEqOptions opt;
  opt.rounds = 30;
  auto eq = verif::check_flow_equivalence(c.netlist, c.clock,
                                          verif::random_stimulus(1), tech, opt);
  printf("flow equivalence: %s (%zu registers, %zu captures)\n",
         eq.equivalent ? "PASS" : eq.mismatch.c_str(), eq.registers_compared,
         eq.captures_compared);
  printf("cycle time: sync %lldps -> desync %.0fps\n",
         static_cast<long long>(eq.sync_period), eq.desync_period);

  // 4. Artifacts: structural Verilog (before and after) and a waveform of
  //    the controllers. quickstart_sync.v is desyn_cli-ready input.
  {
    std::ofstream os("quickstart_sync.v");
    nl::write_verilog(c.netlist, os);
  }
  {
    std::ofstream os("quickstart_desync.v");
    nl::write_verilog(dr.netlist, os);
  }
  {
    std::ofstream os("quickstart_ctl.vcd");
    sim::Simulator sim(dr.netlist, tech);
    sim::VcdWriter vcd(sim, os, dr.ctrl.enables);
    sim.run_until(20000);
    vcd.finish();
  }
  printf("wrote quickstart_sync.v, quickstart_desync.v and quickstart_ctl.vcd\n");
  return eq.equivalent ? 0 : 1;
}
