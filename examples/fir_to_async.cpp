// Domain example: a DSP datapath (transposed FIR filter) taken from a
// synchronous design to a self-timed one, with waveforms and a functional
// check that the filter still filters.
#include <cstdio>
#include <fstream>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "netlist/query.h"
#include "sim/vcd.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

int main() {
  const Tech& tech = Tech::generic90();
  circuits::Circuit c = circuits::fir_filter(8, 12);
  printf("FIR(8 taps, 12-bit): %s\n",
         nl::stats(c.netlist, tech).to_string().c_str());

  // A square-wave input: both implementations must produce the same
  // register streams (which include the accumulator chain = the output).
  verif::Stimulus square = [](int round, size_t bit) {
    if (bit != 0) return cell::V::V0;  // LSB carries the signal
    return (round / 4) % 2 ? cell::V::V1 : cell::V::V0;
  };
  verif::FlowEqOptions opt;
  opt.rounds = 40;
  auto eq = verif::check_flow_equivalence(c.netlist, c.clock, square, tech, opt);
  printf("flow equivalence under square-wave input: %s\n",
         eq.equivalent ? "PASS" : eq.mismatch.c_str());
  printf("throughput: sync %lldps/sample -> self-timed %.0fps/sample\n",
         static_cast<long long>(eq.sync_period), eq.desync_period);
  printf("power: sync %.3fmW (clock tree %.3f) -> desync %.3fmW (control %.3f)\n",
         eq.sync_power_mw, eq.sync_clock_power_mw, eq.desync_power_mw,
         eq.desync_ctl_power_mw);

  // Waveform of the self-timed accumulator output.
  flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, tech);
  std::ofstream os("fir_async.vcd");
  sim::Simulator sim(dr.netlist, tech);
  std::vector<nl::NetId> watch = dr.ctrl.enables;
  for (nl::NetId o : dr.netlist.outputs()) watch.push_back(o);
  sim::VcdWriter vcd(sim, os, watch);
  sim.run_until(40000);
  vcd.finish();
  printf("wrote fir_async.vcd (%llu simulation events)\n",
         static_cast<unsigned long long>(sim.events_processed()));
  return eq.equivalent ? 0 : 1;
}
