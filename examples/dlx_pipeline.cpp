// The paper's case study end-to-end: a gate-level DLX runs a program under
// three execution models — golden ISS, clocked netlist, desynchronized
// netlist — and all three agree.
#include <cstdio>

#include "core/desynchronizer.h"
#include "dlx/cpu_builder.h"
#include "dlx/programs.h"
#include "netlist/query.h"
#include "sim/sim.h"
#include "sta/sta.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

int main() {
  const Tech& tech = Tech::generic90();
  dlx::DlxConfig cfg;
  auto program = dlx::fibonacci_program(10);

  // Golden reference.
  dlx::Iss iss(cfg, program);
  iss.run(260);
  printf("ISS: fib stored to dmem: ");
  for (int i = 0; i < 10; ++i) printf("%u ", iss.dmem(static_cast<uint32_t>(i)));
  printf("\n");

  // Clocked gate-level DLX.
  nl::Netlist nl("dlx");
  dlx::DlxInfo info = dlx::build_dlx(nl, cfg, program);
  printf("netlist: %s\n", nl::stats(nl, tech).to_string().c_str());
  sta::Sta sta(nl, tech);
  Ps period = sta.min_clock_period().min_period;
  period += period % 2;
  printf("STA min clock period: %lldps\n", static_cast<long long>(period));

  sim::Simulator sim(nl, tech);
  sim.add_clock(info.clk, period, period / 2);
  sim.run_until(period * 261);
  bool hw_ok = true;
  for (uint32_t i = 0; i < 10; ++i) {
    hw_ok &= sim.ram_word(info.dmem, i) == iss.dmem(i);
  }
  printf("clocked netlist matches ISS: %s\n", hw_ok ? "yes" : "NO");

  // Desynchronized DLX under every handshake protocol: same flows, no
  // clock — the paper's case study swept across the whole Fig. 4 family.
  bool all_eq = true;
  for (ctl::Protocol p : ctl::kAllProtocols) {
    verif::FlowEqOptions opt;
    opt.rounds = 50;
    opt.desync.protocol = p;
    auto eq = verif::check_flow_equivalence(
        nl, info.clk, verif::constant_stimulus(cell::V::V0), tech, opt);
    all_eq &= eq.equivalent;
    printf("%-15s flow-equivalent: %-3s  cycle time sync %lldps -> "
           "desync %.0fps (%+.1f%%)\n",
           ctl::protocol_name(p), eq.equivalent ? "yes" : eq.mismatch.c_str(),
           static_cast<long long>(eq.sync_period), eq.desync_period,
           100.0 * (eq.desync_period - static_cast<double>(eq.sync_period)) /
               static_cast<double>(eq.sync_period));
  }
  return (hw_ok && all_eq) ? 0 : 1;
}
